"""ISP eligibility for hosting a hypergiant's offnets.

The hypergiants publish criteria: enough traffic demand and adequate hosting
capability (§1 cites Google's and Netflix's requirement pages).  We model
eligibility as a deterministic threshold (user base, i.e. demand) plus a
probabilistic acceptance that grows with ISP size and the hypergiant's
``adoption_affinity`` — both sides must want the deployment, and larger ISPs
are more attractive and more capable.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import require
from repro.deployment.hypergiants import HypergiantProfile
from repro.topology.asn import AS


def is_national_incumbent(
    isp: AS, profile: HypergiantProfile, country_total_users: int | None
) -> bool:
    """Whether ``isp`` dominates its national market.

    Incumbents of small countries are eligible below the absolute demand
    threshold: serving (say) half of Mongolia is worth a rack even though
    the absolute user count is tiny.
    """
    if not country_total_users:
        return False
    return isp.users >= profile.incumbent_country_share * country_total_users


def meets_demand_threshold(
    isp: AS, profile: HypergiantProfile, country_total_users: int | None = None
) -> bool:
    """Hard criteria: enough demand (absolute or incumbent) in an open market."""
    if isp.country_code in profile.restricted_countries:
        return False
    if isp.users >= profile.min_isp_users:
        return True
    return is_national_incumbent(isp, profile, country_total_users)


def adoption_probability(
    isp: AS, profile: HypergiantProfile, country_total_users: int | None = None
) -> float:
    """Probability that an eligible ISP actually hosts the hypergiant (2023).

    Log-scales with users above the threshold; saturates below 0.97 so even
    huge ISPs occasionally decline (matching the paper's observation that
    some large ISPs host only a subset of the hypergiants).  National
    incumbents get a boost: a single deployment covers the whole market.
    """
    if not meets_demand_threshold(isp, profile, country_total_users):
        return 0.0
    headroom = max(1.0, isp.users / profile.min_isp_users)
    base = 0.28 * profile.adoption_affinity * (1.0 + 0.35 * math.log10(headroom))
    if is_national_incumbent(isp, profile, country_total_users):
        base *= profile.incumbent_boost
    return min(0.97, base)


def select_hosting_isps(
    isps: list[AS],
    profile: HypergiantProfile,
    rng: np.random.Generator,
    country_totals: dict[str, int] | None = None,
) -> list[AS]:
    """The ISPs that host ``profile``'s offnets in 2023, in ASN order.

    Draws an independent Bernoulli per ISP with
    :func:`adoption_probability`; deterministic given ``rng`` state and the
    (ASN-sorted) ISP order.  ``country_totals`` enables the incumbent rule.
    """
    require(len({isp.asn for isp in isps}) == len(isps), "duplicate ISPs")
    country_totals = country_totals or {}
    ordered = sorted(isps, key=lambda a: a.asn)
    selected = []
    for isp in ordered:
        total = country_totals.get(isp.country_code)
        if rng.random() < adoption_probability(isp, profile, total):
            selected.append(isp)
    return selected
