"""2021 → 2023 footprint evolution.

Table 1 of the paper compares the number of ISPs hosting each hypergiant in
2021/04 (from the SIGCOMM'21 study) and 2023/04 (the paper's scan): Google
+23.2 %, Netflix +37.4 %, Meta +16.9 %, Akamai +0.0 %.  We model growth as
monotone: the 2021 footprint is a subset of the 2023 footprint, with early
adopters skewed toward larger ISPs (hypergiants expanded from big networks
outward, per the longitudinal findings of the 2021 paper).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro._util import make_rng, require, spawn_rng
from repro.deployment.hypergiants import DEFAULT_HYPERGIANT_PROFILES, HypergiantProfile, profile_by_name
from repro.deployment.placement import Deployment, DeploymentState, PlacementConfig, place_offnets
from repro.topology.generator import Internet

_EPOCH_LABEL = re.compile(r"^(\d{4})(?:Q([1-4]))?$")


def parse_epoch_label(label: str) -> tuple[int, int]:
    """Parse an epoch label into ``(year, quarter)`` for calendar ordering.

    Accepts yearly labels (``"2021"`` → ``(2021, 0)``) and quarterly ones
    (``"2024Q3"`` → ``(2024, 3)``).  A yearly label sorts before that
    year's quarters, so a yearly snapshot reads as "start of year".
    Anything else raises :class:`ValueError` naming the offender — epoch
    labels are identity in histories and store keys, so silent fallbacks
    (like the old lexicographic ``max``) would mis-order, not fail.
    """
    match = _EPOCH_LABEL.match(label) if isinstance(label, str) else None
    if match is None:
        raise ValueError(
            f"unparseable epoch label {label!r}: expected 'YYYY' (e.g. '2021') "
            "or 'YYYYQn' with n in 1-4 (e.g. '2024Q3')"
        )
    year = int(match.group(1))
    quarter = int(match.group(2)) if match.group(2) else 0
    return (year, quarter)


def epoch_key(label: str) -> tuple[int, int]:
    """Calendar sort key for epoch labels (alias of :func:`parse_epoch_label`)."""
    return parse_epoch_label(label)


@dataclass
class DeploymentHistory:
    """Deployment snapshots keyed by epoch label."""

    epochs: dict[str, DeploymentState]

    def state(self, epoch: str) -> DeploymentState:
        """The snapshot at ``epoch`` (KeyError if absent)."""
        return self.epochs[epoch]

    @property
    def latest(self) -> DeploymentState:
        """The snapshot at the calendar-greatest epoch label.

        Quarterly and yearly labels interleave correctly ("2024Q3" beats
        "2024" but loses to "2025"); lexicographic ordering would not.
        """
        return self.epochs[max(self.epochs, key=epoch_key)]


def _early_adopter_weights(deployments: list[Deployment]) -> np.ndarray:
    """Sampling weights favouring large ISPs as 2021 incumbents."""
    users = np.array([max(1, d.isp.users) for d in deployments], dtype=float)
    return np.log10(users + 10.0) ** 2


def derive_earlier_state(
    state: DeploymentState,
    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES,
    seed: int | np.random.Generator = 0,
    epoch: str = "2021",
) -> DeploymentState:
    """Subsample ``state`` down to each hypergiant's 2021 footprint ratio."""
    rng = make_rng(seed)
    kept: list[Deployment] = []
    for profile in sorted(profiles, key=lambda p: p.name):
        hypergiant_deployments = [d for d in state.deployments if d.hypergiant == profile.name]
        n_keep = int(round(profile.footprint_2021_ratio * len(hypergiant_deployments)))
        require(0 <= n_keep <= len(hypergiant_deployments), "bad 2021 ratio")
        if n_keep == len(hypergiant_deployments):
            kept.extend(hypergiant_deployments)
            continue
        weights = _early_adopter_weights(hypergiant_deployments)
        probabilities = weights / weights.sum()
        indices = rng.choice(len(hypergiant_deployments), size=n_keep, replace=False, p=probabilities)
        kept.extend(hypergiant_deployments[i] for i in sorted(indices))
    return DeploymentState(epoch=epoch, deployments=kept)


def build_deployment_history(
    internet: Internet,
    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES,
    config: PlacementConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> DeploymentHistory:
    """Place the 2023 footprint and derive the 2021 subset (Table 1 inputs)."""
    root = make_rng(seed)
    state_2023 = place_offnets(internet, profiles, config, seed=spawn_rng(root, "placement"), epoch="2023")
    state_2021 = derive_earlier_state(state_2023, profiles, seed=spawn_rng(root, "history"), epoch="2021")
    return DeploymentHistory(epochs={"2021": state_2021, "2023": state_2023})


#: Approximate footprint fraction (relative to 2023) per year, shaped after
#: the SIGCOMM'21 "Seven Years in the Life of Hypergiants' Off-Nets"
#: longitudinal curves: Akamai was built out early and flat; the others
#: ramped through the late 2010s.
DEFAULT_EPOCH_TRAJECTORIES: dict[str, dict[str, float]] = {
    "Google": {"2017": 0.45, "2019": 0.62, "2021": 3810 / 4697, "2023": 1.0},
    "Netflix": {"2017": 0.25, "2019": 0.45, "2021": 2115 / 2906, "2023": 1.0},
    "Meta": {"2017": 0.15, "2019": 0.50, "2021": 2214 / 2588, "2023": 1.0},
    "Akamai": {"2017": 0.95, "2019": 1.0, "2021": 1.0, "2023": 1.0},
}


def build_epoch_series(
    internet: Internet,
    trajectories: dict[str, dict[str, float]] | None = None,
    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES,
    config: PlacementConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> DeploymentHistory:
    """A multi-epoch history (2017-2023 by default) with nested footprints.

    Each epoch's footprint is a subset of the next ones (monotone growth),
    drawn with the same early-adopters-are-large skew as the two-epoch
    history.  Supports the §3.1 longitudinal claim that cohosting keeps
    rising.
    """
    trajectories = trajectories or DEFAULT_EPOCH_TRAJECTORIES
    root = make_rng(seed)
    final_state = place_offnets(internet, profiles, config, seed=spawn_rng(root, "placement"), epoch="2023")
    epochs_sorted = sorted({epoch for t in trajectories.values() for epoch in t}, key=epoch_key)
    require(epochs_sorted and epochs_sorted[-1] == "2023", "trajectories must end at 2023")

    rng_subset = spawn_rng(root, "subsets")
    epochs: dict[str, DeploymentState] = {"2023": final_state}
    # Walk backwards so each epoch is a subset of its successor.
    current: dict[str, list[Deployment]] = {}
    for profile in sorted(profiles, key=lambda p: p.name):
        current[profile.name] = [d for d in final_state.deployments if d.hypergiant == profile.name]
    for epoch in reversed(epochs_sorted[:-1]):
        kept: list[Deployment] = []
        for profile in sorted(profiles, key=lambda p: p.name):
            pool = current[profile.name]
            ratio_here = trajectories.get(profile.name, {}).get(epoch, 1.0)
            ratio_next = 1.0
            for later in epochs_sorted:
                if epoch_key(later) > epoch_key(epoch) and later in trajectories.get(profile.name, {}):
                    ratio_next = trajectories[profile.name][later]
                    break
            keep_fraction = min(1.0, ratio_here / ratio_next) if ratio_next else 1.0
            n_keep = int(round(keep_fraction * len(pool)))
            if n_keep >= len(pool):
                subset = list(pool)
            elif n_keep == 0:
                subset = []
            else:
                weights = _early_adopter_weights(pool)
                probabilities = weights / weights.sum()
                indices = rng_subset.choice(len(pool), size=n_keep, replace=False, p=probabilities)
                subset = [pool[i] for i in sorted(indices)]
            current[profile.name] = subset
            kept.extend(subset)
        epochs[epoch] = DeploymentState(epoch=epoch, deployments=kept)
    return DeploymentHistory(epochs=epochs)


def growth_percent(history: DeploymentHistory, hypergiant: str) -> float:
    """Percent growth in hosting-ISP count from 2021 to 2023 (Table 1)."""
    profile = profile_by_name(hypergiant)
    del profile  # validates the name
    n_2021 = len(history.state("2021").isps_hosting(hypergiant))
    n_2023 = len(history.state("2023").isps_hosting(hypergiant))
    require(n_2021 > 0, f"{hypergiant} has no 2021 footprint")
    return 100.0 * (n_2023 - n_2021) / n_2021
