"""Per-hypergiant parameters.

Numbers are the paper's own (§2.1, §3.2): Sandvine traffic shares, offnet
cache-hit fractions, and the 2021→2023 footprint ratios from Table 1.  The
``adoption_affinity`` knob is ours: it scales how aggressively a hypergiant
recruits ISPs, tuned so footprint *proportions* in the generated Internet
match Table 1 (Google in most offnet-hosting ISPs, Akamai in ~20 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require_fraction, require_positive


@dataclass(frozen=True)
class HypergiantProfile:
    """Deployment and traffic parameters for one hypergiant."""

    name: str
    #: Share of total Internet traffic (Sandvine 2023 via §2.1).
    traffic_share: float
    #: Fraction of the hypergiant's traffic an offnet can serve (§2.1).
    offnet_serve_fraction: float
    #: Fraction of its 2023 ISP footprint already present in 2021 (Table 1).
    footprint_2021_ratio: float
    #: Relative eagerness to deploy into ISPs (scales eligibility odds).
    adoption_affinity: float
    #: Minimum ISP user base the hypergiant considers worth an offnet.
    min_isp_users: int
    #: A *national incumbent* (an ISP holding at least this share of its
    #: country's users) is eligible even below ``min_isp_users`` — this is
    #: how all four hypergiants end up inside the single dominant ISP of
    #: small markets like Mongolia or Greenland (Figure 1c).
    incumbent_country_share: float = 0.45
    #: Adoption-probability multiplier for incumbents (deploying into the
    #: one network that serves a whole country is disproportionately
    #: attractive).
    incumbent_boost: float = 1.8
    #: Whether deployments predate the colocation era (Akamai: servers were
    #: placed before ISPs standardised on hosting hypergiants together).
    legacy_deployment: bool = False
    #: Countries the hypergiant does not deploy offnets in (blocked or
    #: withdrawn markets).  China blocks all four services; Google, Netflix
    #: and Meta have no Russian deployments either.  These markets are why a
    #: quarter of the world's Internet users are in ISPs with no offnets at
    #: all (Figure 2's 76 % coverage headline).
    restricted_countries: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        require_fraction(self.traffic_share, "traffic_share")
        require_fraction(self.offnet_serve_fraction, "offnet_serve_fraction")
        require_fraction(self.footprint_2021_ratio, "footprint_2021_ratio")
        require_positive(self.adoption_affinity, "adoption_affinity")
        require_positive(self.min_isp_users, "min_isp_users")
        require_fraction(self.incumbent_country_share, "incumbent_country_share")
        require_positive(self.incumbent_boost, "incumbent_boost")

    @property
    def servable_traffic_share(self) -> float:
        """Share of a user's *total* traffic an offnet of this HG can serve.

        §3.2's arithmetic: e.g. Google 21 % x 80 % = 17 % of total traffic.
        """
        return self.traffic_share * self.offnet_serve_fraction


#: Paper-derived profiles.  Table 1 ratios: Google 3810/4697, Netflix
#: 2115/2906, Meta 2214/2588, Akamai 1094/1094.  Akamai's traffic share is
#: the midpoint of its claimed 15-20 % of web traffic.
DEFAULT_HYPERGIANT_PROFILES: tuple[HypergiantProfile, ...] = (
    HypergiantProfile(
        name="Google",
        traffic_share=0.21,
        offnet_serve_fraction=0.80,
        footprint_2021_ratio=3810 / 4697,
        adoption_affinity=1.9,
        min_isp_users=100_000,
        restricted_countries=frozenset({"CN", "RU"}),
    ),
    HypergiantProfile(
        name="Netflix",
        traffic_share=0.09,
        offnet_serve_fraction=0.95,
        footprint_2021_ratio=2115 / 2906,
        adoption_affinity=1.3,
        min_isp_users=500_000,
        restricted_countries=frozenset({"CN", "RU"}),
    ),
    HypergiantProfile(
        name="Meta",
        traffic_share=0.15,
        offnet_serve_fraction=0.86,
        footprint_2021_ratio=2214 / 2588,
        adoption_affinity=1.2,
        min_isp_users=500_000,
        restricted_countries=frozenset({"CN", "RU"}),
    ),
    HypergiantProfile(
        name="Akamai",
        traffic_share=0.175,
        offnet_serve_fraction=0.75,
        footprint_2021_ratio=1.0,
        adoption_affinity=3.0,
        min_isp_users=5_000_000,
        legacy_deployment=True,
        restricted_countries=frozenset({"CN"}),
    ),
)


def profile_by_name(name: str, profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES) -> HypergiantProfile:
    """Return the profile named ``name`` (KeyError if absent)."""
    for profile in profiles:
        if profile.name == name:
            return profile
    raise KeyError(f"no hypergiant profile named {name!r}")
