"""Offnet server placement into ISP facilities and racks.

The placement mirrors the operational story the paper tells in §3.1: ISPs
that host several hypergiants have strong reasons to put the servers in the
same facility (management, interconnection, cache-fill convenience), and an
operator reports same-*rack* hosting is "super common".  Akamai's deployments
are ``legacy``: they were placed before the colocation era, so they follow a
weaker colocation preference — which is the paper's own hypothesis for why
Akamai shows more partial colocation in Table 2.

Placement order is: legacy hypergiants first (they found facilities when no
other offnets existed), then the rest in descending adoption affinity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction, spawn_rng
from repro.deployment.eligibility import select_hosting_isps
from repro.deployment.hypergiants import DEFAULT_HYPERGIANT_PROFILES, HypergiantProfile
from repro.topology.asn import AS
from repro.topology.facilities import Facility, Rack
from repro.topology.generator import Internet


@dataclass(eq=False)
class OffnetServer:
    """One offnet cache server: ground truth for every inference stage."""

    ip: int
    hypergiant: str
    isp: AS
    facility: Facility
    rack: Rack

    def __hash__(self) -> int:
        return hash(("OffnetServer", self.ip))

    def __repr__(self) -> str:
        return f"OffnetServer(ip={self.ip}, hg={self.hypergiant!r}, isp={self.isp.name!r}, fac={self.facility.name!r})"


@dataclass
class Deployment:
    """One hypergiant's offnet presence inside one ISP."""

    hypergiant: str
    isp: AS
    servers: list[OffnetServer] = field(default_factory=list)

    @property
    def facilities(self) -> list[Facility]:
        """Distinct facilities used, in facility-id order."""
        return sorted({s.facility for s in self.servers}, key=lambda f: f.facility_id)

    @property
    def site_count(self) -> int:
        """Number of distinct facilities (the paper's "sites")."""
        return len({s.facility for s in self.servers})


@dataclass
class DeploymentState:
    """A snapshot of all offnet deployments at one epoch."""

    epoch: str
    deployments: list[Deployment]
    _by_key: dict[tuple[str, int], Deployment] = field(init=False, repr=False)
    _server_by_ip: dict[int, OffnetServer] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_key = {}
        self._server_by_ip = {}
        for deployment in self.deployments:
            key = (deployment.hypergiant, deployment.isp.asn)
            require(key not in self._by_key, f"duplicate deployment {key}")
            self._by_key[key] = deployment
            for server in deployment.servers:
                require(server.ip not in self._server_by_ip, f"duplicate server IP {server.ip}")
                self._server_by_ip[server.ip] = server

    @property
    def servers(self) -> list[OffnetServer]:
        """Every offnet server, in IP order."""
        return [self._server_by_ip[ip] for ip in sorted(self._server_by_ip)]

    def server_at(self, ip: int) -> OffnetServer | None:
        """Ground-truth server at ``ip`` or None."""
        return self._server_by_ip.get(ip)

    def deployment_of(self, hypergiant: str, isp: AS) -> Deployment | None:
        """The deployment of ``hypergiant`` in ``isp`` or None."""
        return self._by_key.get((hypergiant, isp.asn))

    def isps_hosting(self, hypergiant: str) -> list[AS]:
        """ISPs hosting ``hypergiant``, in ASN order."""
        isps = [d.isp for d in self.deployments if d.hypergiant == hypergiant]
        return sorted(isps, key=lambda a: a.asn)

    def hypergiants_in(self, isp: AS) -> list[str]:
        """Hypergiant names present in ``isp``, sorted."""
        return sorted({d.hypergiant for d in self.deployments if d.isp is isp})

    def hosting_isps(self) -> list[AS]:
        """All ISPs hosting at least one hypergiant, in ASN order."""
        return sorted({d.isp for d in self.deployments}, key=lambda a: a.asn)

    def servers_in(self, isp: AS) -> list[OffnetServer]:
        """All offnet servers inside ``isp``, in IP order."""
        servers = [s for d in self.deployments if d.isp is isp for s in d.servers]
        return sorted(servers, key=lambda s: s.ip)


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for :func:`place_offnets`."""

    #: Probability a non-legacy hypergiant colocates a new site with the
    #: facility already hosting the most offnet servers in the ISP.
    colocation_preference: float = 0.88
    #: Same, for legacy (pre-colocation-era) hypergiants.
    legacy_colocation_preference: float = 0.40
    #: Probability an additional site beyond the first is deployed, per
    #: hypergiant (drives the §4.1 single-site fractions).
    multi_site_probability: dict[str, float] = field(
        default_factory=lambda: {"Google": 0.45, "Netflix": 0.14, "Meta": 0.38, "Akamai": 0.42}
    )
    #: Maximum sites a hypergiant deploys in one ISP.
    max_sites: int = 3
    #: Server count bounds per site (scaled by ISP size and traffic share).
    min_servers_per_site: int = 2
    max_servers_per_site: int = 40
    #: Rack capacity and the probability of squeezing into an existing rack.
    rack_capacity: int = 8
    rack_sharing_probability: float = 0.6
    #: Addresses at the start of each ISP's space reserved for infrastructure.
    reserved_low_addresses: int = 512

    def __post_init__(self) -> None:
        require_fraction(self.colocation_preference, "colocation_preference")
        require_fraction(self.legacy_colocation_preference, "legacy_colocation_preference")
        require_fraction(self.rack_sharing_probability, "rack_sharing_probability")
        require(self.max_sites >= 1, "max_sites must be >= 1")
        require(1 <= self.min_servers_per_site <= self.max_servers_per_site, "bad server bounds")
        require(self.rack_capacity >= 1, "rack_capacity must be >= 1")


class _IpAllocator:
    """Sequential per-ISP allocator inside the ISP's first prefix."""

    def __init__(self, internet: Internet, reserved_low: int) -> None:
        self._internet = internet
        self._reserved_low = reserved_low
        self._next_offset: dict[AS, int] = {}

    def allocate(self, isp: AS, count: int) -> list[int]:
        prefix = self._internet.plan.prefixes_of(isp)[0]
        offset = self._next_offset.get(isp, self._reserved_low)
        require(offset + count <= prefix.size, f"{isp.name} address space exhausted for offnets")
        self._next_offset[isp] = offset + count
        return [prefix.base + offset + i for i in range(count)]


class _RackPlanner:
    """Tracks rack occupancy per facility, allowing cross-HG rack sharing."""

    def __init__(self, capacity: int, share_probability: float, rng: np.random.Generator) -> None:
        self._capacity = capacity
        self._share_probability = share_probability
        self._rng = rng
        self._occupancy: dict[Rack, int] = {}
        self._open_racks: dict[Facility, list[Rack]] = {}

    def place(self, facility: Facility) -> Rack:
        """Pick a rack for one server in ``facility``."""
        open_racks = [r for r in self._open_racks.get(facility, []) if self._occupancy[r] < self._capacity]
        self._open_racks[facility] = open_racks
        if open_racks and self._rng.random() < self._share_probability:
            rack = open_racks[0]
        else:
            rack = facility.new_rack()
            self._occupancy[rack] = 0
            self._open_racks.setdefault(facility, []).append(rack)
        self._occupancy[rack] += 1
        return rack


def _placement_order(profiles: tuple[HypergiantProfile, ...]) -> list[HypergiantProfile]:
    """Legacy hypergiants deploy first; then descending adoption affinity."""
    return sorted(profiles, key=lambda p: (not p.legacy_deployment, -p.adoption_affinity, p.name))


def _site_count(profile: HypergiantProfile, isp: AS, config: PlacementConfig, rng: np.random.Generator) -> int:
    """Number of distinct facilities the deployment will use."""
    available = len(isp.cities)  # facility count tracks city presence
    p_extra = config.multi_site_probability.get(profile.name, 0.3)
    # Bigger ISPs spread offnets across more locations.
    if isp.users > 2_000_000:
        p_extra = min(1.0, p_extra * 1.6)
    sites = 1
    while sites < min(config.max_sites, max(1, available)) and rng.random() < p_extra:
        sites += 1
    return sites


def _servers_per_site(profile: HypergiantProfile, isp: AS, config: PlacementConfig, rng: np.random.Generator) -> int:
    """Server count for one site, scaled by demand (users x traffic share)."""
    demand = isp.users * profile.traffic_share
    scale = np.clip(np.log10(max(10.0, demand)) - 2.0, 0.5, 5.0)
    mean = config.min_servers_per_site + 3.0 * scale
    count = int(rng.poisson(mean))
    return int(np.clip(count, config.min_servers_per_site, config.max_servers_per_site))


def place_offnets(
    internet: Internet,
    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES,
    config: PlacementConfig | None = None,
    seed: int | np.random.Generator = 0,
    epoch: str = "2023",
) -> DeploymentState:
    """Place every hypergiant's 2023 offnet footprint onto ``internet``.

    Returns the full (latest-epoch) :class:`DeploymentState`; use
    :func:`repro.deployment.growth.build_deployment_history` to derive the
    2021 snapshot as well.
    """
    config = config or PlacementConfig()
    root = make_rng(seed)
    rng_select = spawn_rng(root, "select")
    rng_place = spawn_rng(root, "place")
    allocator = _IpAllocator(internet, config.reserved_low_addresses)
    racks = _RackPlanner(config.rack_capacity, config.rack_sharing_probability, spawn_rng(root, "racks"))

    # Offnet servers already placed per facility (for colocation preference).
    facility_load: dict[Facility, int] = {}
    deployments: list[Deployment] = []

    for profile in _placement_order(profiles):
        coloc_pref = (
            config.legacy_colocation_preference if profile.legacy_deployment else config.colocation_preference
        )
        country_totals = {c.code: c.internet_users for c in internet.world.countries}
        hosting = select_hosting_isps(internet.isps, profile, rng_select, country_totals)
        for isp in hosting:
            facilities = internet.facilities_of(isp)
            if not facilities:
                continue
            n_sites = min(_site_count(profile, isp, config, rng_place), len(facilities))
            chosen: list[Facility] = []
            for _ in range(n_sites):
                remaining = [f for f in facilities if f not in chosen]
                if not remaining:
                    break
                loaded = [f for f in remaining if facility_load.get(f, 0) > 0]
                if loaded and rng_place.random() < coloc_pref:
                    # Prefer the facility already hosting the most offnets.
                    site = max(loaded, key=lambda f: (facility_load.get(f, 0), -f.facility_id))
                else:
                    site = remaining[int(rng_place.integers(0, len(remaining)))]
                chosen.append(site)
            deployment = Deployment(hypergiant=profile.name, isp=isp)
            for site in chosen:
                n_servers = _servers_per_site(profile, isp, config, rng_place)
                ips = allocator.allocate(isp, n_servers)
                for ip in ips:
                    rack = racks.place(site)
                    deployment.servers.append(
                        OffnetServer(ip=ip, hypergiant=profile.name, isp=isp, facility=site, rack=rack)
                    )
                facility_load[site] = facility_load.get(site, 0) + n_servers
            if deployment.servers:
                deployments.append(deployment)

    return DeploymentState(epoch=epoch, deployments=deployments)
