"""Hypergiant offnet deployments (substrate).

Models how Google, Netflix, Meta, and Akamai place offnet cache servers into
ISP facilities: per-hypergiant parameters (:mod:`repro.deployment.hypergiants`),
ISP eligibility rules (:mod:`repro.deployment.eligibility`), facility/rack
placement with colocation preference (:mod:`repro.deployment.placement`), and
the 2021→2023 footprint evolution (:mod:`repro.deployment.growth`).
"""

from repro.deployment.growth import (
    DeploymentHistory,
    build_deployment_history,
    epoch_key,
    parse_epoch_label,
)
from repro.deployment.hypergiants import (
    DEFAULT_HYPERGIANT_PROFILES,
    HypergiantProfile,
    profile_by_name,
)
from repro.deployment.placement import Deployment, DeploymentState, OffnetServer, PlacementConfig, place_offnets

__all__ = [
    "DEFAULT_HYPERGIANT_PROFILES",
    "Deployment",
    "DeploymentHistory",
    "DeploymentState",
    "HypergiantProfile",
    "OffnetServer",
    "PlacementConfig",
    "build_deployment_history",
    "epoch_key",
    "parse_epoch_label",
    "place_offnets",
    "profile_by_name",
]
