"""Accuracy-baseline checking: ``repro eval --baseline``.

Mirrors the :mod:`repro.bench` regress-fail discipline for *accuracy*
instead of wall time: ``benchmarks/BENCH_accuracy.json`` commits a floor
per stage metric (derived from a measured scorecard minus a small slack),
and :func:`check_accuracy` re-scores the scenario fresh and fails if any
metric fell below its floor.  Accuracy, unlike timing, is deterministic —
a trip here is an inference-quality regression, never machine noise.

Regenerating the baselines is a deliberate act: run the benchmarks suite
(``PYTHONPATH=src python -m pytest benchmarks/test_bench_accuracy.py -s``)
and commit the rewritten file alongside the change that justified it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro._util import format_table, require
from repro.eval.scorecard import Scorecard

ACCURACY_FORMAT = "repro-accuracy-v1"

#: Committed floors sit this far below the measured value (absolute).
DEFAULT_FLOOR_SLACK = 0.05

#: Flat-metric suffixes that receive floors, per stage prefix.  Coverage
#: metrics (how many IPs have PTR records at all) describe the substrate,
#: not the inference, so they carry no floor.
_FLOOR_SUFFIXES: dict[str, tuple[str, ...]] = {
    "detection.": ("precision", "recall"),
    "clustering.": ("pooled_rand", "homogeneity"),
    "rdns.": ("city_accuracy", "metro_accuracy"),
    "traceroute.": ("precision", "recall"),
}


def floor_metrics(scorecard: Scorecard) -> list[str]:
    """The flat-metric names of ``scorecard`` that receive floors."""
    names = []
    for name in scorecard.flat_metrics():
        for prefix, suffixes in _FLOOR_SUFFIXES.items():
            if name.startswith(prefix) and name.rsplit(".", 1)[-1] in suffixes:
                names.append(name)
    names.append("aggregate")
    return names


def derive_floors(scorecard: Scorecard, slack: float = DEFAULT_FLOOR_SLACK) -> dict[str, float]:
    """Floor thresholds from a measured ``scorecard`` minus ``slack``."""
    require(0.0 < slack < 1.0, "slack must be a fraction in (0, 1)")
    measured = scorecard.flat_metrics()
    return {
        name: max(0.0, round(measured[name] - slack, 3)) for name in floor_metrics(scorecard)
    }


def accuracy_baseline_document(
    scorecard: Scorecard,
    evasion: dict[str, Scorecard] | None = None,
    slack: float = DEFAULT_FLOOR_SLACK,
) -> dict[str, Any]:
    """The committed ``BENCH_accuracy.json`` structure.

    ``evasion`` optionally records the degraded scorecards of the
    adversarial scenario variants (informational: the floors gate only
    the honest baseline scenario).
    """
    document = {
        "format": ACCURACY_FORMAT,
        "scenario": scorecard.scenario,
        "slack": slack,
        "floors": derive_floors(scorecard, slack),
        "measured": scorecard.to_json(),
    }
    if evasion:
        document["evasion"] = {
            name: degraded.to_json() for name, degraded in sorted(evasion.items())
        }
    return document


@dataclass(frozen=True)
class FloorCheck:
    """One metric's fresh-vs-floor comparison."""

    metric: str
    floor: float
    measured: float

    @property
    def ok(self) -> bool:
        """Whether the fresh value holds the floor (NaN = metric vanished)."""
        return not math.isnan(self.measured) and self.measured >= self.floor


@dataclass
class AccuracyCheckResult:
    """The full outcome of one accuracy-baseline check."""

    baseline_path: Path
    scenario: str
    checks: list[FloorCheck] = field(default_factory=list)

    @property
    def regressions(self) -> list[FloorCheck]:
        """Metrics below their floor (or missing from the fresh scorecard)."""
        return [check for check in self.checks if not check.ok]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """The per-metric comparison table plus the verdict."""
        rows = []
        for check in self.checks:
            if math.isnan(check.measured):
                verdict = "MISSING (metric not produced)"
            elif check.ok:
                verdict = "ok"
            else:
                verdict = "REGRESSION (below floor)"
            rows.append(
                [check.metric, f"{check.floor:.3f}", f"{check.measured:.4f}", verdict]
            )
        lines = [format_table(["metric", "floor", "fresh", "verdict"], rows)]
        verdict = (
            "accuracy check passed"
            if self.passed
            else f"accuracy check FAILED: {len(self.regressions)} metric(s) below floor"
        )
        lines.append(f"{verdict} (baseline: {self.baseline_path}, scenario {self.scenario!r})")
        return "\n".join(lines)


def compare_to_floors(
    floors: dict[str, float],
    scorecard: Scorecard,
    baseline_path: Path,
    scenario: str,
) -> AccuracyCheckResult:
    """Check every floor against ``scorecard``'s flat metrics."""
    measured = scorecard.flat_metrics()
    result = AccuracyCheckResult(baseline_path=baseline_path, scenario=scenario)
    for metric, floor in sorted(floors.items()):
        result.checks.append(
            FloorCheck(
                metric=metric,
                floor=float(floor),
                measured=float(measured.get(metric, float("nan"))),
            )
        )
    return result


def check_accuracy(
    baseline_path: str | Path,
    scorecard: Scorecard | None = None,
    scenario: str | None = None,
) -> AccuracyCheckResult:
    """Score the baseline's scenario fresh and compare against its floors.

    ``scorecard`` lets tests (and callers that already scored the study)
    inject a scorecard instead of re-running the pipeline; ``scenario``
    overrides the baseline's recorded scenario name.  Raises
    :class:`ValueError` if the baseline file is missing or malformed.
    """
    baseline_path = Path(baseline_path)
    require(baseline_path.exists(), f"no accuracy baseline at {baseline_path}")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    require(
        baseline.get("format") == ACCURACY_FORMAT,
        f"{baseline_path} is not an accuracy baseline (format != {ACCURACY_FORMAT!r}); "
        "regenerate it with benchmarks/test_bench_accuracy.py",
    )
    floors = baseline.get("floors")
    require(
        isinstance(floors, dict) and bool(floors),
        f"{baseline_path} has no floor thresholds; "
        "regenerate it with benchmarks/test_bench_accuracy.py",
    )
    scenario = scenario or baseline.get("scenario") or "small"
    if scorecard is None:
        from repro.eval.scorecard import build_scorecard
        from repro.experiments.scenarios import cached_study

        scorecard = build_scorecard(cached_study(scenario), scenario=scenario)
    return compare_to_floors(floors, scorecard, baseline_path, scenario)
