"""The per-stage ground-truth accuracy scorecard.

:func:`build_scorecard` scores every inference stage of a finished
:class:`~repro.core.pipeline.Study` against the substrate's ground truth
(the real study's missing luxury — DESIGN.md §2):

* **detection** — offnet precision/recall/F1 per scanned epoch
  (:func:`repro.scan.detection.score_detection`);
* **clustering** — per-ISP colocation clusterings vs true facility
  assignment at every xi (:mod:`repro.eval.clustering`);
* **rdns** — hostname geohints vs true facility coordinates
  (:mod:`repro.eval.rdns`);
* **traceroute** — peering inference vs the true relationship graph
  (:func:`repro.traceroute.peering.score_peering_inference`).

The scorecard serializes to a canonical JSON document (sorted keys, fixed
rounding) so differential tests can assert byte-stability across executor
backends, and flattens to ``metric name -> value`` for the regress-fail
floors in :mod:`repro.eval.baselines`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.eval.clustering import ClusteringStageScore, score_clustering_stage
from repro.eval.rdns import RdnsStageScore, score_rdns_stage
from repro.obs import Telemetry, ensure_telemetry
from repro.scan.detection import DetectionScore, score_detection
from repro.traceroute.peering import (
    CampaignConfig,
    PeeringScore,
    run_peering_campaign,
    score_peering_inference,
)

if TYPE_CHECKING:
    from repro.core.pipeline import Study

SCORECARD_FORMAT = "repro-scorecard-v1"

#: Mirrors the §4.2 experiment's campaign shape (seed and targets/ISP), so
#: the scorecard's traceroute numbers match ``repro peering`` output.
PEERING_SEED = 9
PEERING_TARGETS_PER_ISP = 2

#: Fractional metrics are rounded to this many digits in the JSON document
#: (canonical across platforms; counts stay exact integers).
_ROUND_DIGITS = 6


def _round(value: float) -> float:
    return round(float(value), _ROUND_DIGITS)


@dataclass(frozen=True)
class Scorecard:
    """Per-stage and aggregate accuracy of one study's inference pipeline."""

    scenario: str | None
    #: epoch -> detection score (every scanned epoch).
    detection: dict[str, DetectionScore]
    #: xi -> pooled clustering score over all analyzable ISPs.
    clustering: dict[float, ClusteringStageScore]
    rdns: RdnsStageScore
    #: hypergiant -> peering-inference score.
    traceroute: dict[str, PeeringScore]

    # -- aggregation ----------------------------------------------------------

    @property
    def aggregate(self) -> float:
        """One headline number: the mean of the four stage headlines.

        Detection F1 (latest epoch), pooled Rand (mean over xis), rDNS
        metro accuracy, and peering F1 (mean over hypergiants).
        """
        return sum(self.stage_headlines.values()) / len(self.stage_headlines)

    @property
    def stage_headlines(self) -> dict[str, float]:
        """The four per-stage headline metrics feeding :attr:`aggregate`."""
        latest = max(self.detection)
        xis = sorted(self.clustering)
        hypergiants = sorted(self.traceroute)
        return {
            "detection_f1": self.detection[latest].f1,
            "clustering_pooled_rand": sum(self.clustering[xi].pooled_rand for xi in xis)
            / len(xis),
            "rdns_metro_accuracy": self.rdns.metro_accuracy,
            "traceroute_f1": sum(self.traceroute[hg].f1 for hg in hypergiants)
            / len(hypergiants),
        }

    def flat_metrics(self) -> dict[str, float]:
        """Every scorecard fraction as ``stage.qualifier.metric -> value``."""
        flat: dict[str, float] = {}
        for epoch, score in self.detection.items():
            flat[f"detection.{epoch}.precision"] = score.precision
            flat[f"detection.{epoch}.recall"] = score.recall
            flat[f"detection.{epoch}.f1"] = score.f1
        for xi, stage in self.clustering.items():
            prefix = f"clustering.xi={xi:g}"
            flat[f"{prefix}.pooled_rand"] = stage.pooled_rand
            flat[f"{prefix}.mean_rand"] = stage.mean_rand
            flat[f"{prefix}.homogeneity"] = stage.homogeneity
            flat[f"{prefix}.completeness"] = stage.completeness
        flat["rdns.ptr_coverage"] = self.rdns.ptr_coverage
        flat["rdns.located_fraction"] = self.rdns.located_fraction
        flat["rdns.city_accuracy"] = self.rdns.city_accuracy
        flat["rdns.metro_accuracy"] = self.rdns.metro_accuracy
        flat["rdns.stale_explained_fraction"] = self.rdns.stale_explained_fraction
        for hypergiant, score in self.traceroute.items():
            flat[f"traceroute.{hypergiant}.precision"] = score.precision
            flat[f"traceroute.{hypergiant}.recall"] = score.recall
            flat[f"traceroute.{hypergiant}.f1"] = score.f1
        flat["aggregate"] = self.aggregate
        return flat

    # -- serialization --------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """A structured, canonical-friendly document (counts + fractions)."""
        return {
            "format": SCORECARD_FORMAT,
            "scenario": self.scenario,
            "detection": {
                epoch: {
                    "true_positives": score.true_positives,
                    "false_positives": score.false_positives,
                    "false_negatives": score.false_negatives,
                    "precision": _round(score.precision),
                    "recall": _round(score.recall),
                    "f1": _round(score.f1),
                }
                for epoch, score in self.detection.items()
            },
            "clustering": {
                f"{xi:g}": {
                    "n_isps": stage.n_isps,
                    "n_ips": stage.n_ips,
                    "pooled_rand": _round(stage.pooled_rand),
                    "mean_rand": _round(stage.mean_rand),
                    "homogeneity": _round(stage.homogeneity),
                    "completeness": _round(stage.completeness),
                }
                for xi, stage in self.clustering.items()
            },
            "rdns": {
                "n_servers": self.rdns.n_servers,
                "n_with_ptr": self.rdns.n_with_ptr,
                "n_located": self.rdns.n_located,
                "n_city_correct": self.rdns.n_city_correct,
                "n_metro_correct": self.rdns.n_metro_correct,
                "n_wrong_stale": self.rdns.n_wrong_stale,
                "city_accuracy": _round(self.rdns.city_accuracy),
                "metro_accuracy": _round(self.rdns.metro_accuracy),
            },
            "traceroute": {
                hypergiant: {
                    "true_peer_detected": score.true_peer_detected,
                    "true_peer_possible": score.true_peer_possible,
                    "true_peer_missed": score.true_peer_missed,
                    "false_peer": score.false_peer,
                    "precision": _round(score.precision),
                    "recall": _round(score.recall),
                    "f1": _round(score.f1),
                }
                for hypergiant, score in self.traceroute.items()
            },
            "aggregate": _round(self.aggregate),
        }

    def canonical_json(self) -> str:
        """The byte-stable serialization differential tests compare."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        """A human-readable per-stage metric table plus the aggregate."""
        from repro._util import format_table

        rows = [[name, f"{value:.4f}"] for name, value in sorted(self.flat_metrics().items())]
        table = format_table(["metric", "value"], rows)
        label = self.scenario or "(unnamed study)"
        return f"inference accuracy scorecard — {label}\n{table}"


def build_scorecard(
    study: "Study",
    scenario: str | None = None,
    hypergiants: tuple[str, ...] = ("Google",),
    peering_regions: int = 4,
    telemetry: Telemetry | None = None,
) -> Scorecard:
    """Score every inference stage of ``study`` against ground truth.

    ``hypergiants``/``peering_regions`` shape the traceroute stage: a
    fresh §4.2-style campaign (:data:`PEERING_SEED`) is run per hypergiant
    against the ISPs truly hosting it.  All other stages score artifacts
    the study already carries, so they add no pipeline work.
    """
    from repro.rdns.geohints import build_default_parser

    obs = ensure_telemetry(telemetry)
    with obs.span("eval.scorecard", scenario=scenario or ""):
        state = study.history.state(max(study.history.epochs))

        detection = {
            epoch: score_detection(inventory, study.history.state(epoch))
            for epoch, inventory in study.inventories.items()
        }

        facility_of_ip = {server.ip: server.facility.facility_id for server in state.servers}
        clustering = {
            xi: score_clustering_stage(xi, per_isp, facility_of_ip)
            for xi, per_isp in study.clusterings.items()
        }

        parser = build_default_parser(study.internet.world)
        rdns = score_rdns_stage(state, study.ptr, parser)

        traceroute: dict[str, PeeringScore] = {}
        for hypergiant in hypergiants:
            hosting = state.isps_hosting(hypergiant)
            with obs.span("eval.peering", hypergiant=hypergiant, n_items=len(hosting)):
                inference = run_peering_campaign(
                    study.internet,
                    hypergiant,
                    hosting,
                    CampaignConfig(
                        n_regions=peering_regions, targets_per_isp=PEERING_TARGETS_PER_ISP
                    ),
                    seed=PEERING_SEED,
                )
            traceroute[hypergiant] = score_peering_inference(
                study.internet, hypergiant, inference
            )

        scorecard = Scorecard(
            scenario=scenario,
            detection=detection,
            clustering=clustering,
            rdns=rdns,
            traceroute=traceroute,
        )
        obs.count("eval.stages_scored", 4)
        for name, value in scorecard.stage_headlines.items():
            obs.gauge(f"eval.{name}", value)
        obs.gauge("eval.aggregate", scorecard.aggregate)
        obs.log(
            "scorecard built",
            scenario=scenario,
            aggregate=round(scorecard.aggregate, 4),
        )
    return scorecard
