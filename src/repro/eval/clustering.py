"""Colocation-clustering quality vs ground-truth facility assignment.

The substrate knows the true facility of every offnet IP
(:class:`repro.deployment.placement.OffnetServer`), so per-ISP latency
clusterings can be scored exactly: the ground-truth labeling puts two IPs
together iff they sit in the same facility.  Agreement is measured with
the same pair-confusion machinery the clustering module exposes
(:func:`repro.clustering.sites.pair_confusion_counts`, noise = singleton),
plus two cluster-purity views:

* **homogeneity** — of the predicted clusters, the fraction whose members
  all share one true facility (an impure cluster merges facilities);
* **completeness** — of the true multi-IP facilities, the fraction whose
  IPs all landed in one predicted cluster (a split facility is incomplete).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.sites import SiteClustering, pair_confusion_counts


def clustering_truth_labels(
    clustering: SiteClustering, facility_of_ip: dict[int, int]
) -> np.ndarray:
    """Ground-truth facility labels aligned with ``clustering.ips``.

    Raises :class:`KeyError` naming the first IP missing from
    ``facility_of_ip`` (same ergonomics as
    :meth:`repro.clustering.sites.SiteClustering.label_of`).
    """
    labels = np.empty(len(clustering.ips), dtype=int)
    for position, ip in enumerate(clustering.ips):
        try:
            labels[position] = facility_of_ip[ip]
        except KeyError:
            raise KeyError(
                f"IP {ip} has no ground-truth facility in the supplied map "
                f"({len(facility_of_ip)} known IPs; see DeploymentState.server_at)"
            ) from None
    return labels


@dataclass(frozen=True)
class IspClusteringScore:
    """One ISP's clustering scored against its true facility layout."""

    asn: int
    n_ips: int
    #: (both_together, predicted_only, truth_only, both_apart) over IP pairs.
    pair_counts: tuple[int, int, int, int]
    n_clusters: int
    n_pure_clusters: int
    n_multi_ip_facilities: int
    n_intact_facilities: int

    @property
    def rand(self) -> float:
        """Rand index of the clustering vs the facility labeling."""
        together, pred_only, truth_only, apart = self.pair_counts
        total = together + pred_only + truth_only + apart
        return (together + apart) / total if total else 1.0


def score_isp_clustering(
    asn: int, clustering: SiteClustering, facility_of_ip: dict[int, int]
) -> IspClusteringScore:
    """Score one ISP's ``clustering`` against ``facility_of_ip`` truth."""
    truth = clustering_truth_labels(clustering, facility_of_ip)
    counts = pair_confusion_counts(np.asarray(clustering.labels), truth)

    facility_by_position = {ip: facility_of_ip[ip] for ip in clustering.ips}
    clusters = clustering.clusters
    pure = sum(1 for cluster in clusters if len({facility_by_position[ip] for ip in cluster}) == 1)

    members_by_facility: dict[int, list[int]] = {}
    for ip in clustering.ips:
        members_by_facility.setdefault(facility_of_ip[ip], []).append(ip)
    multi = {fac: ips for fac, ips in members_by_facility.items() if len(ips) >= 2}
    intact = 0
    for ips in multi.values():
        labels = {int(clustering.label_of(ip)) for ip in ips}
        if len(labels) == 1 and labels.pop() >= 0:
            intact += 1

    return IspClusteringScore(
        asn=asn,
        n_ips=len(clustering.ips),
        pair_counts=counts,
        n_clusters=len(clusters),
        n_pure_clusters=pure,
        n_multi_ip_facilities=len(multi),
        n_intact_facilities=intact,
    )


@dataclass(frozen=True)
class ClusteringStageScore:
    """All analyzable ISPs' clusterings at one xi, scored and pooled."""

    xi: float
    per_isp: tuple[IspClusteringScore, ...]

    @property
    def n_isps(self) -> int:
        return len(self.per_isp)

    @property
    def n_ips(self) -> int:
        return sum(score.n_ips for score in self.per_isp)

    @property
    def pooled_rand(self) -> float:
        """Rand index over the union of every ISP's IP pairs."""
        together = pred_only = truth_only = apart = 0
        for score in self.per_isp:
            t, p, q, a = score.pair_counts
            together += t
            pred_only += p
            truth_only += q
            apart += a
        total = together + pred_only + truth_only + apart
        return (together + apart) / total if total else 1.0

    @property
    def mean_rand(self) -> float:
        """Unweighted mean Rand over ISPs with at least one IP pair."""
        scored = [s.rand for s in self.per_isp if s.n_ips >= 2]
        return float(np.mean(scored)) if scored else 1.0

    @property
    def homogeneity(self) -> float:
        """Fraction of predicted clusters containing a single true facility."""
        clusters = sum(s.n_clusters for s in self.per_isp)
        pure = sum(s.n_pure_clusters for s in self.per_isp)
        return pure / clusters if clusters else 1.0

    @property
    def completeness(self) -> float:
        """Fraction of true multi-IP facilities kept in one predicted cluster."""
        facilities = sum(s.n_multi_ip_facilities for s in self.per_isp)
        intact = sum(s.n_intact_facilities for s in self.per_isp)
        return intact / facilities if facilities else 1.0


def score_clustering_stage(
    xi: float,
    clusterings: dict[int, SiteClustering],
    facility_of_ip: dict[int, int],
) -> ClusteringStageScore:
    """Score every ISP's clustering at ``xi`` against the facility truth."""
    per_isp = tuple(
        score_isp_clustering(asn, clustering, facility_of_ip)
        for asn, clustering in sorted(clusterings.items())
    )
    return ClusteringStageScore(xi=xi, per_isp=per_isp)
