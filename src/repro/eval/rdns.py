"""rDNS-geo validation accuracy vs true facility coordinates.

§3.2 validates clusters through hostname geohints; this module scores the
*geohints themselves* against ground truth, which the real study could
not do: for every offnet server with a located PTR hostname, compare the
parsed city against the server's true facility city — exact-city matches,
metro matches (within :data:`repro.rdns.validation.METRO_RADIUS_M`), and
whether the remaining errors are explained by the synthesized stale
records (:attr:`repro.rdns.ptr.PtrDataset.stale_ips`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deployment.placement import DeploymentState
from repro.rdns.geohints import GeohintParser
from repro.rdns.ptr import PtrDataset
from repro.rdns.validation import METRO_RADIUS_M


@dataclass(frozen=True)
class RdnsStageScore:
    """Geohint accuracy counts over all offnet servers of one epoch."""

    n_servers: int
    #: Servers with any PTR record.
    n_with_ptr: int
    #: Of those, servers whose hostname parses to a city.
    n_located: int
    #: Located servers whose parsed city is exactly the facility's city.
    n_city_correct: int
    #: Located servers within the metro radius of the facility's city
    #: (includes the exact matches).
    n_metro_correct: int
    #: Wrongly-located servers whose PTR record is a known stale record.
    n_wrong_stale: int

    @property
    def ptr_coverage(self) -> float:
        """Servers with a PTR record / all servers."""
        return self.n_with_ptr / self.n_servers if self.n_servers else 1.0

    @property
    def located_fraction(self) -> float:
        """Located servers / servers with a PTR record."""
        return self.n_located / self.n_with_ptr if self.n_with_ptr else 1.0

    @property
    def city_accuracy(self) -> float:
        """Exact-city matches / located servers."""
        return self.n_city_correct / self.n_located if self.n_located else 1.0

    @property
    def metro_accuracy(self) -> float:
        """Metro-radius matches / located servers."""
        return self.n_metro_correct / self.n_located if self.n_located else 1.0

    @property
    def stale_explained_fraction(self) -> float:
        """Of the metro-level misses, the fraction explained by stale PTRs."""
        wrong = self.n_located - self.n_metro_correct
        return self.n_wrong_stale / wrong if wrong else 1.0


def score_rdns_stage(
    state: DeploymentState, ptr: PtrDataset, parser: GeohintParser
) -> RdnsStageScore:
    """Score ``ptr``'s geohints against ``state``'s true facility cities."""
    n_with_ptr = n_located = n_city = n_metro = n_wrong_stale = 0
    for server in state.servers:
        hostname = ptr.hostname_of(server.ip)
        if hostname is None:
            continue
        n_with_ptr += 1
        parsed = parser.city_of(hostname)
        if parsed is None:
            continue
        n_located += 1
        true_city = server.facility.city
        if parsed.name == true_city.name:
            n_city += 1
            n_metro += 1
        elif parsed.distance_m(true_city) <= METRO_RADIUS_M:
            n_metro += 1
        elif server.ip in ptr.stale_ips:
            n_wrong_stale += 1
    return RdnsStageScore(
        n_servers=len(state.servers),
        n_with_ptr=n_with_ptr,
        n_located=n_located,
        n_city_correct=n_city,
        n_metro_correct=n_metro,
        n_wrong_stale=n_wrong_stale,
    )
