"""Ground-truth evaluation of the inference pipeline (ROADMAP item 5).

The synthetic substrate knows the truth the real HotNets '23 study could
only estimate: which IPs are offnets, which facility each sits in, where
each facility is, and who peers with whom.  This package scores every
inference stage against that truth (:mod:`repro.eval.scorecard`), commits
the numbers as regress-fail floors (:mod:`repro.eval.baselines`,
``benchmarks/BENCH_accuracy.json``), and backs the adversarial
certificate-evasion scenarios (:mod:`repro.scan.evasion`) that measure how
the scorecard — and the paper's concentration conclusions — degrade when
hypergiants stop cooperating with certificate fingerprinting.
"""

from repro.eval.baselines import (
    ACCURACY_FORMAT,
    DEFAULT_FLOOR_SLACK,
    AccuracyCheckResult,
    FloorCheck,
    accuracy_baseline_document,
    check_accuracy,
    compare_to_floors,
    derive_floors,
)
from repro.eval.clustering import (
    ClusteringStageScore,
    IspClusteringScore,
    clustering_truth_labels,
    score_clustering_stage,
    score_isp_clustering,
)
from repro.eval.rdns import RdnsStageScore, score_rdns_stage
from repro.eval.scorecard import SCORECARD_FORMAT, Scorecard, build_scorecard

__all__ = [
    "ACCURACY_FORMAT",
    "AccuracyCheckResult",
    "ClusteringStageScore",
    "DEFAULT_FLOOR_SLACK",
    "FloorCheck",
    "IspClusteringScore",
    "RdnsStageScore",
    "SCORECARD_FORMAT",
    "Scorecard",
    "accuracy_baseline_document",
    "build_scorecard",
    "check_accuracy",
    "clustering_truth_labels",
    "compare_to_floors",
    "derive_floors",
    "score_clustering_stage",
    "score_isp_clustering",
    "score_rdns_stage",
]
