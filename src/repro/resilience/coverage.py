"""Coverage accounting: what fraction of the measurement surface survived.

The paper's pipeline is lossy by design — unresponsive IPs are filtered,
under-measured ISPs are discarded — and §3.2 reports results *alongside*
the coverage they rest on.  :class:`CoverageReport` makes that explicit
for every run: each site records ``(lost, total)`` where *lost* counts
data removed by injected faults or quarantined shards (never by the
ordinary quality filters, which are part of the methodology and already
surfaced in the filter funnel).

A fault-free or transient-only-faulted run reports zero losses at every
site, so its coverage section (and the archive manifest that embeds it)
is byte-identical to a clean run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro._util import format_table

#: Sites whose losses mean whole shards of work were quarantined.
SHARD_SITES = ("campaign.shards", "clustering.shards")


@dataclass
class CoverageReport:
    """Per-site ``(lost, total)`` loss accounting for one study run."""

    #: site -> [lost, total], insertion-ordered by stage.
    entries: dict[str, tuple[int, int]] = field(default_factory=dict)

    def record(self, site: str, lost: int, total: int) -> None:
        """Add ``(lost, total)`` for ``site`` (accumulates on repeat)."""
        previous_lost, previous_total = self.entries.get(site, (0, 0))
        self.entries[site] = (previous_lost + int(lost), previous_total + int(total))

    def lost(self, site: str) -> int:
        """Units lost at ``site`` (0 if never recorded)."""
        return self.entries.get(site, (0, 0))[0]

    def total(self, site: str) -> int:
        """Units attempted at ``site`` (0 if never recorded)."""
        return self.entries.get(site, (0, 0))[1]

    def fraction_lost(self, site: str) -> float:
        """Lost fraction at ``site`` (0.0 when nothing was attempted)."""
        lost, total = self.entries.get(site, (0, 0))
        return lost / total if total else 0.0

    @property
    def complete(self) -> bool:
        """Whether nothing anywhere was lost."""
        return all(lost == 0 for lost, _ in self.entries.values())

    @property
    def shards_lost(self) -> int:
        """Quarantined shards across every sharded stage."""
        return sum(self.lost(site) for site in SHARD_SITES)

    def to_json(self) -> dict[str, Any]:
        """Canonical JSON form: ``{site: {"lost": l, "total": t}}``, sorted."""
        return {
            site: {"lost": lost, "total": total}
            for site, (lost, total) in sorted(self.entries.items())
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CoverageReport":
        """Rebuild from :meth:`to_json` output."""
        report = cls()
        for site in sorted(data):
            entry = data[site]
            report.entries[site] = (int(entry["lost"]), int(entry["total"]))
        return report

    def render(self) -> str:
        """An aligned table, one row per site, plus the headline verdict."""
        if not self.entries:
            return "coverage: no instrumented stages ran"
        rows = [
            [site, total - lost, total, f"{100.0 * (lost / total if total else 0.0):.2f}%"]
            for site, (lost, total) in self.entries.items()
        ]
        table = format_table(["site", "kept", "total", "lost"], rows)
        verdict = (
            "coverage: complete (no injected or quarantined losses)"
            if self.complete
            else f"coverage: DEGRADED ({self.shards_lost} shards quarantined)"
        )
        return f"{verdict}\n{table}"
