"""Bounded, classified retries with deterministic backoff jitter.

The policy separates *retryable* errors — transient injected faults, dead
or hung workers, broken pools, OS-level timeouts — from *fatal* ones
(bad configs, fatal injected faults, genuine bugs), and spaces attempts
with exponential backoff whose jitter comes from a seeded generator, so
two runs of the same plan retry on the same schedule.  Delays default to
zero: tests and the chaos harness exercise attempt *counting* without
paying wall-clock time.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro._util import require, require_non_negative
from repro.faults import FatalFaultError, TransientFaultError, WorkerCrashError


class ShardTimeoutError(TimeoutError):
    """A shard exceeded its per-shard execution timeout."""


class ShardQuarantinedError(RuntimeError):
    """A stage lost more shards than its error budget allows."""


#: Errors a retry is expected to clear.  Fatal injected faults are
#: deliberately absent: they model permanent damage.
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    TransientFaultError,
    WorkerCrashError,
    ShardTimeoutError,
    BrokenProcessPool,
    FuturesTimeoutError,
    TimeoutError,
    ConnectionError,
)


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` belongs to a class retrying can plausibly clear."""
    if isinstance(error, FatalFaultError):
        return False
    return isinstance(error, RETRYABLE_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter."""

    #: Total attempts (first try included); 1 disables retrying.
    max_attempts: int = 3
    #: Delay before the first retry; 0 retries immediately.
    base_delay_s: float = 0.0
    #: Multiplier applied per further retry.
    backoff: float = 2.0
    #: Ceiling on any single delay.
    max_delay_s: float = 30.0
    #: Fraction of the delay added as seeded-random jitter (decorrelates
    #: retry storms without sacrificing reproducibility).
    jitter: float = 0.0

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require_non_negative(self.base_delay_s, "base_delay_s")
        require(self.backoff >= 1.0, "backoff must be >= 1")
        require_non_negative(self.max_delay_s, "max_delay_s")
        require(0.0 <= self.jitter <= 1.0, f"jitter must be in [0, 1], got {self.jitter!r}")

    def retries_left(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) has a successor."""
        return attempt + 1 < self.max_attempts

    def delay_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff delay after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * self.backoff**attempt, self.max_delay_s)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.random())
        return min(delay, self.max_delay_s)


def jitter_rng(label: str, index: int, salt: int = 0) -> np.random.Generator:
    """A generator for backoff jitter, independent of all artifact streams.

    Derived from ``(label, index, salt)`` alone — never from the shard's
    measurement stream — so jittered retries cannot perturb artifacts.
    """
    return np.random.default_rng([salt, index, *[ord(ch) for ch in label]])


def call_with_retry(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    *,
    classify: Callable[[BaseException], bool] = is_retryable,
    on_retry: Callable[[int, BaseException], None] | None = None,
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``fn`` receives the 0-based attempt number (injection points use it
    to distinguish transient from permanent faults).  Non-retryable
    errors propagate immediately; the last retryable error propagates
    when attempts run out.  ``on_retry(attempt, error)`` fires before
    each re-attempt — the hook metrics/logging use.
    """
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except BaseException as error:  # noqa: BLE001 — classification decides
            if not classify(error) or not policy.retries_left(attempt):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            delay = policy.delay_s(attempt, rng)
            if delay > 0:
                sleep(delay)
            attempt += 1
