"""The resilience layer: retries, error budgets, and coverage accounting.

Three pieces cooperate to make partial failure a first-class, *measured*
outcome instead of a crash:

* :class:`RetryPolicy` (:mod:`repro.resilience.retry`) — bounded
  attempts with classified retryable-vs-fatal errors and deterministic
  backoff jitter; applied to shard execution and store loads.
* :class:`ResilienceConfig` / :class:`ErrorBudget` — how much loss a
  sharded stage may absorb (quarantined shards become
  :class:`ShardLoss` sentinels) before the run aborts with
  :class:`~repro.resilience.retry.ShardQuarantinedError`.
* :class:`CoverageReport` (:mod:`repro.resilience.coverage`) — the
  per-site ``(lost, total)`` ledger every study carries, surfaced in the
  report's coverage section and the archive manifest.

``resilience.*`` metrics (retries, requeues, fallbacks, timeouts,
quarantines, budget consumption) land on the run's telemetry bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require_fraction
from repro.resilience.coverage import SHARD_SITES, CoverageReport
from repro.resilience.retry import (
    RETRYABLE_ERRORS,
    RetryPolicy,
    ShardQuarantinedError,
    ShardTimeoutError,
    call_with_retry,
    is_retryable,
    jitter_rng,
)


@dataclass(frozen=True)
class ShardLoss:
    """Sentinel standing in for a quarantined shard's missing result."""

    index: int
    #: ``"ErrorType: message"`` of the final failure (picklable by design).
    error: str
    #: Total execution attempts spent, in-process fallback included.
    attempts: int


@dataclass(frozen=True)
class ErrorBudget:
    """How much loss a sharded stage tolerates before aborting the run."""

    #: Max fraction of a stage's shards that may be quarantined.
    shard_loss_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_fraction(self.shard_loss_fraction, "shard_loss_fraction")

    def allows(self, lost: int, total: int) -> bool:
        """Whether losing ``lost`` of ``total`` shards stays within budget."""
        if lost == 0:
            return True
        if total == 0:
            return False
        return lost / total <= self.shard_loss_fraction


@dataclass(frozen=True)
class ResilienceConfig:
    """Execution-only knobs for surviving faults (never change artifacts)."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Run a poisoned shard in the parent process after pool attempts are
    #: exhausted, before quarantining it.
    fallback_in_process: bool = True
    budget: ErrorBudget = field(default_factory=ErrorBudget)


__all__ = [
    "RETRYABLE_ERRORS",
    "SHARD_SITES",
    "CoverageReport",
    "ErrorBudget",
    "ResilienceConfig",
    "RetryPolicy",
    "ShardLoss",
    "ShardQuarantinedError",
    "ShardTimeoutError",
    "call_with_retry",
    "is_retryable",
    "jitter_rng",
]
