"""Inter-AS business relationships and valley-free route computation.

Implements the standard Gao-Rexford routing model: every inter-AS edge is
either customer→provider or peer↔peer, routes must be valley-free, and ASes
prefer customer-learned routes over peer-learned over provider-learned,
breaking ties by AS-path length and then by lowest next-hop ASN (so the whole
simulation is deterministic).

Peer edges carry a *medium*: a private network interconnect (PNI) or an IXP
fabric; §4.2 of the paper distinguishes these when reasoning about spillover
capacity, and the traceroute engine emits IXP addresses for IXP-mediated hops.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro._util import require
from repro.topology.asn import AS


class Relationship(enum.Enum):
    """Business relationship of an edge, from the perspective of (a, b)."""

    CUSTOMER_TO_PROVIDER = "c2p"
    PEER_TO_PEER = "p2p"


class PeeringMedium(enum.Enum):
    """How a peer↔peer edge is realised physically."""

    PNI = "pni"
    IXP = "ixp"


class RouteKind(enum.IntEnum):
    """Gao-Rexford preference classes, lower is more preferred."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class PeerEdge:
    """Metadata for a peer↔peer adjacency.

    A single AS pair may interconnect over several media at once — e.g. a
    private interconnect in one city plus ports on an IXP fabric — which is
    why ``media`` is a set.  §4.2 distinguishes the media when reasoning
    about spillover capacity, and the traceroute engine picks one medium per
    (source region, pair).
    """

    media: frozenset[PeeringMedium]
    #: IXP id when IXP is among the media, else None.
    ixp_id: int | None = None

    def __post_init__(self) -> None:
        require(bool(self.media), "peer edge needs at least one medium")
        if PeeringMedium.IXP in self.media:
            require(self.ixp_id is not None, "IXP peering needs an ixp_id")
        else:
            require(self.ixp_id is None, "PNI-only peering must not carry an ixp_id")

    @classmethod
    def pni(cls) -> "PeerEdge":
        """A private-interconnect-only peering."""
        return cls(media=frozenset({PeeringMedium.PNI}))

    @classmethod
    def ixp(cls, ixp_id: int) -> "PeerEdge":
        """An IXP-fabric-only peering."""
        return cls(media=frozenset({PeeringMedium.IXP}), ixp_id=ixp_id)

    @classmethod
    def both(cls, ixp_id: int) -> "PeerEdge":
        """PNI plus IXP ports."""
        return cls(media=frozenset({PeeringMedium.PNI, PeeringMedium.IXP}), ixp_id=ixp_id)

    @property
    def has_pni(self) -> bool:
        """Whether a private interconnect exists."""
        return PeeringMedium.PNI in self.media

    @property
    def has_ixp(self) -> bool:
        """Whether the pair peers over an IXP fabric."""
        return PeeringMedium.IXP in self.media


@dataclass
class Route:
    """A selected route: how ``source`` reaches the destination."""

    kind: RouteKind
    #: Next hop AS (None at the origin).
    next_hop: AS | None
    #: AS-path length in edges (0 at the origin).
    length: int

    @property
    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: lower is better (kind, length, next-hop ASN)."""
        next_asn = self.next_hop.asn if self.next_hop is not None else 0
        return (int(self.kind), self.length, next_asn)


@dataclass
class ASGraph:
    """The inter-AS relationship graph with valley-free routing.

    Edges are added with :meth:`add_customer_provider` and :meth:`add_peering`
    and queried via the ``providers_of`` / ``customers_of`` / ``peers_of``
    accessors.  :meth:`routes_to` computes, for one destination, the route
    every AS selects (or None if unreachable), which the traceroute engine
    replays hop by hop.
    """

    _providers: dict[AS, set[AS]] = field(default_factory=dict)
    _customers: dict[AS, set[AS]] = field(default_factory=dict)
    _peers: dict[AS, dict[AS, PeerEdge]] = field(default_factory=dict)
    _route_cache: dict[int, dict[AS, Route]] = field(default_factory=dict, repr=False)

    # -- construction ------------------------------------------------------

    def add_customer_provider(self, customer: AS, provider: AS) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        require(customer is not provider, "self-loop relationship")
        require(provider not in self._providers.get(customer, set()), f"duplicate c2p {customer.asn}->{provider.asn}")
        require(customer not in self._providers.get(provider, set()), "relationship would be bidirectional c2p")
        require(provider not in self._peers.get(customer, {}), "already peers")
        self._providers.setdefault(customer, set()).add(provider)
        self._customers.setdefault(provider, set()).add(customer)
        self._route_cache.clear()

    def add_peering(self, a: AS, b: AS, edge: PeerEdge) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        require(a is not b, "self-loop peering")
        require(b not in self._peers.get(a, {}), f"duplicate peering {a.asn}<->{b.asn}")
        require(b not in self._providers.get(a, set()) and a not in self._providers.get(b, set()),
                "already in a transit relationship")
        self._peers.setdefault(a, {})[b] = edge
        self._peers.setdefault(b, {})[a] = edge
        self._route_cache.clear()

    # -- accessors ----------------------------------------------------------

    def providers_of(self, a: AS) -> list[AS]:
        """Transit providers of ``a``, in ASN order."""
        return sorted(self._providers.get(a, ()), key=lambda x: x.asn)

    def customers_of(self, a: AS) -> list[AS]:
        """Customers of ``a``, in ASN order."""
        return sorted(self._customers.get(a, ()), key=lambda x: x.asn)

    def peers_of(self, a: AS) -> list[AS]:
        """Settlement-free peers of ``a``, in ASN order."""
        return sorted(self._peers.get(a, ()), key=lambda x: x.asn)

    def peer_edge(self, a: AS, b: AS) -> PeerEdge:
        """The peering metadata between ``a`` and ``b``."""
        return self._peers[a][b]

    def are_peers(self, a: AS, b: AS) -> bool:
        """Whether ``a`` and ``b`` have a settlement-free peering."""
        return b in self._peers.get(a, {})

    def has_any_relationship(self, a: AS, b: AS) -> bool:
        """Whether any direct business relationship links ``a`` and ``b``."""
        return (
            self.are_peers(a, b)
            or b in self._providers.get(a, set())
            or a in self._providers.get(b, set())
        )

    def neighbors_of(self, a: AS) -> list[AS]:
        """All adjacent ASes regardless of relationship, in ASN order."""
        adjacent: set[AS] = set(self._providers.get(a, ()))
        adjacent.update(self._customers.get(a, ()))
        adjacent.update(self._peers.get(a, {}))
        return sorted(adjacent, key=lambda x: x.asn)

    def all_ases(self) -> list[AS]:
        """Every AS that appears in at least one edge, in ASN order."""
        seen: set[AS] = set()
        for mapping in (self._providers, self._customers):
            for a, others in mapping.items():
                seen.add(a)
                seen.update(others)
        for a, others in self._peers.items():
            seen.add(a)
            seen.update(others)
        return sorted(seen, key=lambda x: x.asn)

    # -- routing -------------------------------------------------------------

    def routes_to(self, destination: AS) -> dict[AS, Route]:
        """Valley-free best route from every AS to ``destination``.

        Classic three-stage computation:

        1. *customer routes*: propagate from the destination up
           customer→provider edges (each hop is learned from a customer);
        2. *peer routes*: one peer edge on top of a customer route (or the
           origin);
        3. *provider routes*: propagate down provider→customer edges from any
           AS that already has a route.

        Within each stage, routes propagate in BFS order so path lengths are
        minimal for that preference class; ties prefer the lowest next-hop ASN.
        """
        cached = self._route_cache.get(destination.asn)
        if cached is not None:
            return cached

        routes: dict[AS, Route] = {destination: Route(RouteKind.ORIGIN, None, 0)}

        # Stage 1: customer routes, BFS from destination along c2p edges.
        frontier = deque([destination])
        while frontier:
            current = frontier.popleft()
            current_route = routes[current]
            for provider in self.providers_of(current):
                candidate = Route(RouteKind.CUSTOMER, current, current_route.length + 1)
                existing = routes.get(provider)
                if existing is None or candidate.preference_key < existing.preference_key:
                    if existing is None:
                        frontier.append(provider)
                    routes[provider] = candidate

        # Stage 2: peer routes (a single peer edge atop origin/customer routes).
        customer_holders = [a for a, r in routes.items() if r.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)]
        for holder in sorted(customer_holders, key=lambda x: x.asn):
            holder_route = routes[holder]
            for peer in self.peers_of(holder):
                candidate = Route(RouteKind.PEER, holder, holder_route.length + 1)
                existing = routes.get(peer)
                if existing is None or candidate.preference_key < existing.preference_key:
                    routes[peer] = candidate

        # Stage 3: provider routes, BFS down p2c edges from every routed AS.
        frontier = deque(sorted(routes, key=lambda a: (routes[a].length, a.asn)))
        while frontier:
            current = frontier.popleft()
            current_route = routes[current]
            for customer in self.customers_of(current):
                candidate = Route(RouteKind.PROVIDER, current, current_route.length + 1)
                existing = routes.get(customer)
                if existing is None or candidate.preference_key < existing.preference_key:
                    if existing is None or existing.kind is RouteKind.PROVIDER:
                        frontier.append(customer)
                    routes[customer] = candidate

        self._route_cache[destination.asn] = routes
        return routes

    def as_path(self, source: AS, destination: AS) -> list[AS] | None:
        """The AS-level path ``source`` uses to reach ``destination``.

        Returns None if no valley-free route exists.  The path includes both
        endpoints; a source routing to itself yields ``[source]``.
        """
        routes = self.routes_to(destination)
        if source not in routes:
            return None
        path = [source]
        current = source
        while current is not destination:
            route = routes[current]
            require(route.next_hop is not None, "non-origin route must have next hop")
            current = route.next_hop
            path.append(current)
            require(len(path) <= len(routes) + 1, "routing loop detected")
        return path
