"""Autonomous systems: entities, roles, and registries.

The study reasons about four kinds of networks: the hypergiants (Google,
Netflix, Meta, Akamai), transit providers (including the tier-1 clique),
access ISPs (where offnets live and users sit), and IXP operators (whose
fabrics show up in traceroutes).  Ground-truth attributes that the real study
must *infer* (e.g. which facility hosts which server) are carried directly on
these objects so inference stages can be scored.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import require
from repro.topology.geo import City


class ASRole(enum.Enum):
    """Business role of an autonomous system."""

    HYPERGIANT = "hypergiant"
    TIER1 = "tier1"
    TRANSIT = "transit"
    ACCESS = "access"

    @property
    def is_isp(self) -> bool:
        """Whether the AS is an "ISP" in the paper's sense (hosts offnets).

        The paper uses "ISP" for access and transit networks collectively
        ("offnet servers in access or transit networks (collectively, ISPs)").
        """
        return self in (ASRole.ACCESS, ASRole.TRANSIT)


@dataclass(eq=False)
class AS:
    """An autonomous system.

    Identity is by object (``eq=False``); ``asn`` is unique within an
    :class:`~repro.topology.generator.Internet` and used for stable ordering.
    """

    asn: int
    name: str
    role: ASRole
    country_code: str
    #: Cities where this AS has a network presence (PoPs / serving sites).
    cities: list[City] = field(default_factory=list)
    #: Estimated Internet users served (access ISPs; 0 for others).
    users: int = 0

    def __post_init__(self) -> None:
        require(self.asn > 0, "ASN must be positive")
        require(bool(self.name), "AS needs a name")
        require(self.users >= 0, "users must be >= 0")

    def __hash__(self) -> int:
        return hash(("AS", self.asn))

    def __repr__(self) -> str:
        return f"AS(asn={self.asn}, name={self.name!r}, role={self.role.value})"

    @property
    def is_isp(self) -> bool:
        """Whether the paper would call this network an ISP."""
        return self.role.is_isp

    @property
    def home_city(self) -> City:
        """The AS's primary city (first in its city list)."""
        require(bool(self.cities), f"{self.name} has no cities")
        return self.cities[0]


@dataclass
class ASRegistry:
    """Indexed collection of ASes with uniqueness checks."""

    _by_asn: dict[int, AS] = field(default_factory=dict)

    def add(self, autonomous_system: AS) -> AS:
        """Register ``autonomous_system``; ASN must be unused."""
        require(autonomous_system.asn not in self._by_asn, f"duplicate ASN {autonomous_system.asn}")
        self._by_asn[autonomous_system.asn] = autonomous_system
        return autonomous_system

    def get(self, asn: int) -> AS:
        """Return the AS with number ``asn``."""
        return self._by_asn[asn]

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(sorted(self._by_asn.values(), key=lambda a: a.asn))

    def with_role(self, role: ASRole) -> list[AS]:
        """All ASes with ``role``, in ASN order."""
        return [a for a in self if a.role is role]

    @property
    def isps(self) -> list[AS]:
        """All access + transit networks, in ASN order."""
        return [a for a in self if a.is_isp]
