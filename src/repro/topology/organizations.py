"""Organizations: sibling ASes and AS2Org-style aggregation.

Real ISPs often announce from several sibling ASNs (regional networks,
acquisitions).  Counting "ISPs hosting offnets" per ASN therefore
*overcounts* organisations; the footprint studies aggregate through a
CAIDA AS2Org-style dataset.  This module models both halves:

* :func:`build_organizations` — ground truth: group some same-country
  access ASes into multi-AS organisations (telecom groups);
* :class:`OrgDataset` — the published mapping, with imperfect coverage
  (unmapped ASNs fall back to singleton organisations);
* :func:`organization_footprint` — aggregate a detected offnet inventory
  to organisation level.

The ablation bench quantifies the per-ASN overcount the aggregation fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction
from repro.scan.detection import OffnetInventory
from repro.topology.generator import Internet


@dataclass(frozen=True)
class Organization:
    """One organisation and the ASNs it operates."""

    org_id: str
    name: str
    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        require(bool(self.asns), "organisation needs at least one ASN")


@dataclass
class OrgDataset:
    """An AS2Org-style mapping, possibly incomplete.

    ``ground_truth`` carries the full sibling structure for scoring;
    ``org_of`` answers from the *published* (coverage-limited) view, the
    way a consumer of the dataset would see it.
    """

    organizations: list[Organization]
    #: ASN -> org_id in the published dataset (subset of the truth).
    published: dict[int, str]
    _truth_by_asn: dict[int, str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._truth_by_asn = {}
        seen: set[str] = set()
        for organization in self.organizations:
            require(organization.org_id not in seen, f"duplicate org {organization.org_id}")
            seen.add(organization.org_id)
            for asn in organization.asns:
                require(asn not in self._truth_by_asn, f"ASN {asn} in two organisations")
                self._truth_by_asn[asn] = organization.org_id

    def org_of(self, asn: int) -> str:
        """Published organisation of ``asn`` (singleton fallback)."""
        return self.published.get(asn, f"as-{asn}")

    def true_org_of(self, asn: int) -> str:
        """Ground-truth organisation of ``asn`` (singleton fallback)."""
        return self._truth_by_asn.get(asn, f"as-{asn}")

    @property
    def multi_as_organizations(self) -> list[Organization]:
        """Organisations operating more than one ASN."""
        return [o for o in self.organizations if len(o.asns) > 1]

    def coverage(self) -> float:
        """Fraction of organisation-member ASNs present in the published map."""
        member_asns = [asn for o in self.organizations for asn in o.asns]
        if not member_asns:
            return 1.0
        return sum(1 for asn in member_asns if asn in self.published) / len(member_asns)


def build_organizations(
    internet: Internet,
    multi_as_fraction: float = 0.15,
    max_siblings: int = 3,
    published_coverage: float = 0.97,
    seed: int | np.random.Generator = 0,
) -> OrgDataset:
    """Group access ASes into organisations (ground truth + published map).

    ``multi_as_fraction`` of access ASes end up in a multi-AS group with up
    to ``max_siblings`` same-country siblings; the published dataset misses
    each membership with probability ``1 - published_coverage``.
    """
    require_fraction(multi_as_fraction, "multi_as_fraction")
    require_fraction(published_coverage, "published_coverage")
    require(max_siblings >= 2, "max_siblings must be >= 2")
    rng = make_rng(seed)

    by_country: dict[str, list[int]] = {}
    for isp in internet.access_isps:
        by_country.setdefault(isp.country_code, []).append(isp.asn)

    organizations: list[Organization] = []
    published: dict[int, str] = {}
    org_index = 0
    for country in sorted(by_country):
        pool = list(by_country[country])
        target_grouped = int(round(multi_as_fraction * len(pool)))
        grouped = 0
        while grouped < target_grouped and len(pool) >= 2:
            size = int(rng.integers(2, max_siblings + 1))
            size = min(size, len(pool))
            indices = sorted(rng.choice(len(pool), size=size, replace=False), reverse=True)
            members = tuple(sorted(pool.pop(i) for i in indices))
            org_id = f"org-{country.lower()}-{org_index:03d}"
            org_index += 1
            organizations.append(Organization(org_id, f"{country} Telecom Group {org_index}", members))
            grouped += size
        # Remaining ASes are singleton organisations (left implicit: the
        # dataset's fallback handles them).

    for organization in organizations:
        for asn in organization.asns:
            if rng.random() < published_coverage:
                published[asn] = organization.org_id
    return OrgDataset(organizations=organizations, published=published)


@dataclass
class OrgFootprint:
    """Organisation-level hosting counts for one inventory."""

    #: hypergiant -> number of distinct hosting organisations.
    org_counts: dict[str, int] = field(default_factory=dict)
    #: hypergiant -> number of distinct hosting ASNs (the naive count).
    asn_counts: dict[str, int] = field(default_factory=dict)

    def overcount_factor(self, hypergiant: str) -> float:
        """How much the per-ASN count inflates the organisation count."""
        orgs = self.org_counts.get(hypergiant, 0)
        return self.asn_counts.get(hypergiant, 0) / orgs if orgs else 1.0


def organization_footprint(
    inventory: OffnetInventory, dataset: OrgDataset, use_truth: bool = False
) -> OrgFootprint:
    """Aggregate a detected inventory to organisation level.

    With ``use_truth`` the ground-truth sibling structure is used instead
    of the published dataset (for scoring the published map's error).
    """
    resolve = dataset.true_org_of if use_truth else dataset.org_of
    footprint = OrgFootprint()
    for hypergiant in ("Google", "Netflix", "Meta", "Akamai"):
        asns = inventory.isp_asns(hypergiant)
        footprint.asn_counts[hypergiant] = len(asns)
        footprint.org_counts[hypergiant] = len({resolve(asn) for asn in asns})
    return footprint
