"""Colocation facilities and racks.

A facility is a building in one city with shared power/cooling and shared
uplinks; a rack is a position inside a facility.  The paper's central claim
is about servers from *different hypergiants* landing in the *same facility*
(anecdotally, the same rack), so facility/rack identity is the ground truth
that the latency-clustering stage tries to recover and against which
correlated-risk scenarios (§3.3) are defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require
from repro.topology.asn import AS
from repro.topology.geo import City


@dataclass(eq=False)
class Rack:
    """A rack position within a facility."""

    rack_id: int
    facility: "Facility"

    def __hash__(self) -> int:
        return hash(("Rack", self.facility.facility_id, self.rack_id))

    def __repr__(self) -> str:
        return f"Rack({self.facility.name}#{self.rack_id})"


@dataclass(eq=False)
class Facility:
    """A colocation facility.

    ``operator`` is the ISP whose deployments it serves (facilities may be
    third-party buildings in reality; what matters for the model is which
    ISP's offnets can land there).  ``lat``/``lon`` jitter the city centre by
    a few kilometres so intra-city facilities are distinguishable by latency
    geometry, matching the validation result that clustering can separate
    multiple facilities in one metro area.
    """

    facility_id: int
    name: str
    city: City
    operator: AS
    lat: float
    lon: float
    #: Extra per-facility serialisation delay (ms) on the shared uplink,
    #: a stable latency signature that helps separate same-city facilities.
    uplink_delay_ms: float = 0.0
    _racks: list[Rack] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        require(self.facility_id >= 0, "facility_id must be >= 0")
        require(self.uplink_delay_ms >= 0, "uplink_delay_ms must be >= 0")

    def __hash__(self) -> int:
        return hash(("Facility", self.facility_id))

    def __repr__(self) -> str:
        return f"Facility({self.name!r}, city={self.city.name!r}, op={self.operator.name!r})"

    def new_rack(self) -> Rack:
        """Add a rack and return it."""
        rack = Rack(len(self._racks), self)
        self._racks.append(rack)
        return rack

    @property
    def racks(self) -> list[Rack]:
        """All racks created so far."""
        return list(self._racks)


def jittered_coordinates(
    city: City, rng: np.random.Generator, max_offset_km: float = 15.0
) -> tuple[float, float]:
    """Coordinates near ``city`` with a uniform offset up to ``max_offset_km``.

    Used to scatter facilities across a metro area.  The offset is small
    enough that a facility remains unambiguously "in" its city for geohint
    validation, but large enough (default up to 15 km, i.e. ~0.15 ms RTT) to
    give distinct facilities distinct latency signatures.
    """
    require(max_offset_km >= 0, "max_offset_km must be >= 0")
    # ~111 km per degree latitude; shrink longitude by cos(lat).
    offset_km = rng.uniform(0, max_offset_km)
    bearing = rng.uniform(0, 2 * np.pi)
    dlat = offset_km * np.cos(bearing) / 111.0
    cos_lat = max(0.1, np.cos(np.radians(city.lat)))
    dlon = offset_km * np.sin(bearing) / (111.0 * cos_lat)
    lat = float(np.clip(city.lat + dlat, -90.0, 90.0))
    lon = float((city.lon + dlon + 180.0) % 360.0 - 180.0)
    return lat, lon
