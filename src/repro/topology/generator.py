"""Seeded whole-Internet generation.

:func:`generate_internet` builds a ground-truth-annotated stand-in for the
Internet the paper measures: a world of countries/cities, hypergiant ASes,
a tier-1 clique, regional transit providers, access ISPs with Zipf user
populations, IXPs, colocation facilities, an IPv4 address plan, and the
business-relationship graph.  All downstream stages (deployment, scanning,
latency measurement, traceroutes) consume the resulting :class:`Internet`.

Everything is deterministic given ``InternetConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, spawn_rng, zipf_weights
from repro.topology.asn import AS, ASRegistry, ASRole
from repro.topology.facilities import Facility, jittered_coordinates
from repro.topology.geo import City, World, default_world
from repro.topology.ixp import IXP
from repro.topology.prefixes import AddressPlan, Prefix
from repro.topology.relationships import ASGraph, PeerEdge


@dataclass(frozen=True)
class HypergiantSpec:
    """Static identity of a hypergiant network."""

    name: str
    asn: int
    home_country: str


#: The four hypergiants the paper studies, with their real ASNs.
DEFAULT_HYPERGIANTS: tuple[HypergiantSpec, ...] = (
    HypergiantSpec("Google", 15169, "US"),
    HypergiantSpec("Netflix", 2906, "US"),
    HypergiantSpec("Meta", 32934, "US"),
    HypergiantSpec("Akamai", 20940, "US"),
)


@dataclass(frozen=True)
class InternetConfig:
    """Knobs for :func:`generate_internet`.

    The defaults produce a "default"-scale Internet (~700 access ISPs) that
    runs the full pipeline in seconds; :mod:`repro.experiments.scenarios`
    defines small/default/large presets.
    """

    seed: int = 0
    n_access_isps: int = 700
    n_tier1: int = 8
    transit_per_continent: int = 4
    n_ixps: int = 40
    #: Zipf exponent for ISP user share within a country.
    isp_zipf_exponent: float = 1.1
    #: Probability scale for hypergiant PNI peering with large access ISPs.
    pni_peering_scale: float = 1.0
    #: Max number of cities an access ISP is present in.
    max_isp_cities: int = 3
    hypergiants: tuple[HypergiantSpec, ...] = DEFAULT_HYPERGIANTS

    def __post_init__(self) -> None:
        require(self.n_access_isps >= 4, "need at least a handful of access ISPs")
        require(self.n_tier1 >= 2, "need at least two tier-1s")
        require(self.n_ixps >= 1, "need at least one IXP")
        require(self.max_isp_cities >= 1, "ISPs need at least one city")


@dataclass
class Internet:
    """A generated Internet with full ground truth."""

    config: InternetConfig
    world: World
    registry: ASRegistry
    graph: ASGraph
    plan: AddressPlan
    ixps: list[IXP]
    hypergiant_ases: dict[str, AS]
    #: Facilities owned by each ISP, in creation order.
    facilities_by_isp: dict[AS, list[Facility]]

    @property
    def access_isps(self) -> list[AS]:
        """All access networks, in ASN order."""
        return self.registry.with_role(ASRole.ACCESS)

    @property
    def transit_isps(self) -> list[AS]:
        """All transit networks (incl. tier-1s), in ASN order."""
        return self.registry.with_role(ASRole.TRANSIT) + self.registry.with_role(ASRole.TIER1)

    @property
    def isps(self) -> list[AS]:
        """All networks the paper would call ISPs, in ASN order."""
        return self.registry.isps

    @property
    def all_facilities(self) -> list[Facility]:
        """Every facility, in facility-id order."""
        result = [f for facilities in self.facilities_by_isp.values() for f in facilities]
        return sorted(result, key=lambda f: f.facility_id)

    def facilities_of(self, isp: AS) -> list[Facility]:
        """Facilities owned by ``isp`` (may be empty)."""
        return list(self.facilities_by_isp.get(isp, ()))

    def hypergiant_as(self, name: str) -> AS:
        """The AS of hypergiant ``name``."""
        return self.hypergiant_ases[name]

    def ixps_in_city(self, city: City) -> list[IXP]:
        """IXPs whose fabric is in ``city``."""
        return [ixp for ixp in self.ixps if ixp.city is city]


class _InternetBuilder:
    """Stateful builder; :func:`generate_internet` is the public entry."""

    def __init__(self, config: InternetConfig) -> None:
        self.config = config
        self.world = default_world()
        self.registry = ASRegistry()
        self.graph = ASGraph()
        self.plan = AddressPlan()
        self.ixps: list[IXP] = []
        self.hypergiant_ases: dict[str, AS] = {}
        self.facilities_by_isp: dict[AS, list[Facility]] = {}
        self._next_asn = 60000
        self._next_facility_id = 0
        root = make_rng(config.seed)
        self._rng_cities = spawn_rng(root, "cities")
        self._rng_users = spawn_rng(root, "users")
        self._rng_edges = spawn_rng(root, "edges")
        self._rng_ixps = spawn_rng(root, "ixps")
        self._rng_facilities = spawn_rng(root, "facilities")

    # -- helpers -------------------------------------------------------------

    def _fresh_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _sample_cities(self, country_code: str, k: int) -> list[City]:
        cities = self.world.cities_in(country_code)
        k = min(k, len(cities))
        weights = np.array([c.weight for c in cities])
        indices = self._rng_cities.choice(len(cities), size=k, replace=False, p=weights / weights.sum())
        return [cities[i] for i in sorted(indices)]

    # -- build stages ---------------------------------------------------------

    def build_hypergiants(self) -> None:
        for spec in self.config.hypergiants:
            hypergiant = AS(
                asn=spec.asn,
                name=spec.name,
                role=ASRole.HYPERGIANT,
                country_code=spec.home_country,
                cities=self.world.cities_in(spec.home_country)[:3],
            )
            self.registry.add(hypergiant)
            self.hypergiant_ases[spec.name] = hypergiant
            self.plan.allocate(hypergiant, 14)

    def build_tier1s(self) -> list[AS]:
        tier1_countries = ["US", "US", "DE", "FR", "GB", "JP", "SE", "IT", "IN", "SG"]
        tier1s: list[AS] = []
        for i in range(self.config.n_tier1):
            country = tier1_countries[i % len(tier1_countries)]
            tier1 = AS(
                asn=self._fresh_asn(),
                name=f"Tier1-{i:02d}",
                role=ASRole.TIER1,
                country_code=country,
                cities=self._sample_cities(country, 2),
            )
            self.registry.add(tier1)
            self.plan.allocate(tier1, 16)
            tier1s.append(tier1)
        # Full clique of PNI peerings among tier-1s.
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                self.graph.add_peering(a, b, PeerEdge.pni())
        # Hypergiants peer (PNI) with every tier-1: universal reachability.
        for hypergiant in self.hypergiant_ases.values():
            for tier1 in tier1s:
                self.graph.add_peering(hypergiant, tier1, PeerEdge.pni())
        return tier1s

    def build_regional_transits(self, tier1s: list[AS]) -> dict[str, list[AS]]:
        by_continent: dict[str, list[str]] = {}
        for country in self.world.countries:
            by_continent.setdefault(country.continent, []).append(country.code)
        transits: dict[str, list[AS]] = {}
        for continent in sorted(by_continent):
            codes = by_continent[continent]
            transits[continent] = []
            for i in range(self.config.transit_per_continent):
                country = codes[int(self._rng_edges.integers(0, len(codes)))]
                transit = AS(
                    asn=self._fresh_asn(),
                    name=f"Transit-{continent}-{i:02d}",
                    role=ASRole.TRANSIT,
                    country_code=country,
                    cities=self._sample_cities(country, 2),
                )
                self.registry.add(transit)
                self.plan.allocate(transit, 17)
                # Each regional transit buys from 2-3 tier-1s.
                n_upstreams = int(self._rng_edges.integers(2, 4))
                upstream_indices = self._rng_edges.choice(len(tier1s), size=min(n_upstreams, len(tier1s)), replace=False)
                for index in sorted(upstream_indices):
                    self.graph.add_customer_provider(transit, tier1s[index])
                transits[continent].append(transit)
            # Partial peer mesh among a continent's transits.
            for i, a in enumerate(transits[continent]):
                for b in transits[continent][i + 1 :]:
                    if self._rng_edges.random() < 0.5:
                        self.graph.add_peering(a, b, PeerEdge.pni())
        return transits

    def build_access_isps(self, transits: dict[str, list[AS]]) -> list[AS]:
        # Distribute the ISP count over countries proportionally to users
        # (minimum 2 each) so populous countries get more ISPs.
        countries = self.world.countries
        user_totals = np.array([c.internet_users for c in countries], dtype=float)
        raw = user_totals / user_totals.sum() * self.config.n_access_isps
        counts = np.maximum(2, np.floor(raw).astype(int))
        access_isps: list[AS] = []
        for country, count in zip(countries, counts):
            shares = zipf_weights(int(count), self.config.isp_zipf_exponent)
            # Shuffle which rank gets which share? No: rank 0 is the incumbent.
            for rank in range(int(count)):
                n_cities = 1 + int(self._rng_cities.integers(0, self.config.max_isp_cities))
                isp = AS(
                    asn=self._fresh_asn(),
                    name=f"{country.code}-ISP-{rank:03d}",
                    role=ASRole.ACCESS,
                    country_code=country.code,
                    cities=self._sample_cities(country.code, n_cities),
                    users=int(round(shares[rank] * country.internet_users)),
                )
                self.registry.add(isp)
                # Address space scales (coarsely) with user base.
                if isp.users > 2_000_000:
                    length = 17
                elif isp.users > 200_000:
                    length = 19
                else:
                    length = 21
                self.plan.allocate(isp, length)
                # Buy transit from 1-2 same-continent regional transits.
                continent = country.continent
                candidates = transits[continent]
                n_upstreams = 1 + int(self._rng_edges.random() < 0.4)
                upstream_indices = self._rng_edges.choice(
                    len(candidates), size=min(n_upstreams, len(candidates)), replace=False
                )
                for index in sorted(upstream_indices):
                    self.graph.add_customer_provider(isp, candidates[index])
                access_isps.append(isp)
        return access_isps

    def build_ixps(self) -> None:
        # Place IXPs in the globally heaviest cities, one per city.
        cities = sorted(self.world.cities, key=lambda c: (-c.weight, c.iata))
        n_ixps = min(self.config.n_ixps, len(cities))
        self.ixps = []
        for i in range(n_ixps):
            city = cities[i]
            # The operator AS exists only to own the fabric prefix in the
            # address plan; it is deliberately NOT registered (it is not a
            # routing participant and must not show up in ISP lists).
            ixp_owner = AS(
                asn=self._fresh_asn(),
                name=f"IXP-{city.iata.upper()}",
                role=ASRole.TRANSIT,
                country_code=city.country_code,
                cities=[city],
            )
            fabric_prefix = self.plan.allocate(ixp_owner, 24)
            ixp = IXP(ixp_id=i, name=f"IXP-{city.iata.upper()}", city=city, fabric_prefix=fabric_prefix)
            self.ixps.append(ixp)

    def wire_ixp_membership_and_hypergiant_peering(self) -> None:
        """Connect ISPs and hypergiants to IXPs; wire hypergiant peerings.

        Targets the §4.2.1 mix: roughly 40 % of offnet-hosting ISPs peer with
        a given hypergiant; of the peers, ~40 % are PNI-only, ~40 % IXP-only,
        ~20 % both.
        """
        ixps_by_country: dict[str, list[IXP]] = {}
        for ixp in self.ixps:
            ixps_by_country.setdefault(ixp.city.country_code, []).append(ixp)
        ixps_by_continent: dict[str, list[IXP]] = {}
        for ixp in self.ixps:
            continent = self.world.country(ixp.city.country_code).continent
            ixps_by_continent.setdefault(continent, []).append(ixp)

        hypergiants = sorted(self.hypergiant_ases.values(), key=lambda a: a.asn)
        # Hypergiants join every IXP (they are omnipresent at large exchanges).
        for ixp in self.ixps:
            for hypergiant in hypergiants:
                ixp.add_member(hypergiant)

        for isp in self.registry.with_role(ASRole.ACCESS):
            continent = self.world.country(isp.country_code).continent
            local_ixps = ixps_by_country.get(isp.country_code) or ixps_by_continent.get(continent, [])
            joined: list[IXP] = []
            if local_ixps:
                # Larger ISPs are more likely to be at an exchange.
                join_probability = min(0.95, 0.25 + 0.12 * np.log10(max(10, isp.users)))
                if self._rng_ixps.random() < join_probability:
                    ixp = local_ixps[int(self._rng_ixps.integers(0, len(local_ixps)))]
                    ixp.add_member(isp)
                    joined.append(ixp)
            # Hypergiant peering decisions, independent per hypergiant.
            # A pair may interconnect over a PNI, an IXP fabric, or both.
            for hypergiant in hypergiants:
                size_factor = min(1.0, isp.users / 8_000_000)
                p_pni = self.config.pni_peering_scale * (0.04 + 0.30 * size_factor)
                p_ixp = 0.26 if joined else 0.0
                pni = self._rng_edges.random() < p_pni
                via_ixp = bool(joined) and self._rng_edges.random() < p_ixp
                if self.graph.has_any_relationship(isp, hypergiant):
                    continue
                if pni and via_ixp:
                    self.graph.add_peering(isp, hypergiant, PeerEdge.both(joined[0].ixp_id))
                elif pni:
                    self.graph.add_peering(isp, hypergiant, PeerEdge.pni())
                elif via_ixp:
                    self.graph.add_peering(isp, hypergiant, PeerEdge.ixp(joined[0].ixp_id))
        # Transit providers also peer with hypergiants (mostly PNI).
        for transit in self.registry.with_role(ASRole.TRANSIT):
            for hypergiant in hypergiants:
                if self._rng_edges.random() < 0.8 and not self.graph.has_any_relationship(transit, hypergiant):
                    self.graph.add_peering(transit, hypergiant, PeerEdge.pni())

    def build_facilities(self) -> None:
        for isp in self.registry.isps:
            # Facility count grows with footprint: one per city, plus an
            # extra in the primary city for the largest networks.
            n_facilities = len(isp.cities)
            if isp.users > 5_000_000 and self._rng_facilities.random() < 0.5:
                n_facilities += 1
            facilities: list[Facility] = []
            for i in range(n_facilities):
                city = isp.cities[i % len(isp.cities)]
                lat, lon = jittered_coordinates(city, self._rng_facilities)
                facility = Facility(
                    facility_id=self._next_facility_id,
                    name=f"{isp.name}-fac{i}",
                    city=city,
                    operator=isp,
                    lat=lat,
                    lon=lon,
                    uplink_delay_ms=float(self._rng_facilities.uniform(0.1, 2.0)),
                )
                self._next_facility_id += 1
                facilities.append(facility)
            self.facilities_by_isp[isp] = facilities

    def build(self) -> Internet:
        self.build_hypergiants()
        tier1s = self.build_tier1s()
        transits = self.build_regional_transits(tier1s)
        self.build_access_isps(transits)
        self.build_ixps()
        self.wire_ixp_membership_and_hypergiant_peering()
        self.build_facilities()
        return Internet(
            config=self.config,
            world=self.world,
            registry=self.registry,
            graph=self.graph,
            plan=self.plan,
            ixps=self.ixps,
            hypergiant_ases=self.hypergiant_ases,
            facilities_by_isp=self.facilities_by_isp,
        )


def generate_internet(config: InternetConfig | None = None) -> Internet:
    """Generate a seeded Internet per ``config`` (defaults: default scale)."""
    return _InternetBuilder(config or InternetConfig()).build()
