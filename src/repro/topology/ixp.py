"""Internet exchange points.

An IXP is a shared layer-2 fabric in one city.  Members get a port with an
address from the fabric's prefix; traceroutes crossing the fabric show that
address, which is how the §4.2.1 methodology attributes an IXP hop to the
member ISP (via Euro-IX / PeeringDB style datasets, modelled in
:mod:`repro.traceroute.ixp_mapping`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require
from repro.topology.asn import AS
from repro.topology.geo import City
from repro.topology.prefixes import Prefix


@dataclass(eq=False)
class IXP:
    """An Internet exchange point with a member address plan."""

    ixp_id: int
    name: str
    city: City
    #: The fabric's peering LAN (addresses seen in traceroutes).
    fabric_prefix: Prefix
    _member_addresses: dict[AS, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        require(self.ixp_id >= 0, "ixp_id must be >= 0")

    def __hash__(self) -> int:
        return hash(("IXP", self.ixp_id))

    def add_member(self, member: AS) -> int:
        """Assign ``member`` a fabric address and return it."""
        require(member not in self._member_addresses, f"{member.name} already on {self.name}")
        offset = len(self._member_addresses) + 1  # .0 reserved
        require(offset < self.fabric_prefix.size, f"{self.name} fabric prefix exhausted")
        address = self.fabric_prefix.base + offset
        self._member_addresses[member] = address
        return address

    @property
    def members(self) -> list[AS]:
        """Member ASes in ASN order."""
        return sorted(self._member_addresses, key=lambda a: a.asn)

    def is_member(self, candidate: AS) -> bool:
        """Whether ``candidate`` has a port on this fabric."""
        return candidate in self._member_addresses

    def address_of(self, member: AS) -> int:
        """The fabric address of ``member``."""
        return self._member_addresses[member]

    def owner_of_address(self, address: int) -> AS | None:
        """Ground-truth member owning ``address``, or None."""
        for member, member_address in self._member_addresses.items():
            if member_address == address:
                return member
        return None
