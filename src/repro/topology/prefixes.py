"""IPv4 address plan.

Addresses are plain ints (fast set/dict keys for 261K-address-scale scans);
:func:`ip_to_str` / :func:`ip_from_str` convert at the edges.  Each AS is
allocated disjoint prefixes by :class:`AddressPlan`, giving the scan stage an
authoritative IP→AS mapping (the real study uses BGP-derived IP-to-AS data).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro._util import require
from repro.topology.asn import AS

IPV4_SPACE = 2**32


def ip_to_str(address: int) -> str:
    """Render an int address as dotted-quad."""
    require(0 <= address < IPV4_SPACE, f"address out of range: {address}")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_from_str(text: str) -> int:
    """Parse a dotted-quad address to an int."""
    parts = text.split(".")
    require(len(parts) == 4, f"malformed IPv4 address {text!r}")
    address = 0
    for part in parts:
        octet = int(part)
        require(0 <= octet <= 255, f"bad octet in {text!r}")
        address = (address << 8) | octet
    return address


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix ``base/length`` with aligned base."""

    base: int
    length: int

    def __post_init__(self) -> None:
        require(0 <= self.length <= 32, f"bad prefix length {self.length}")
        require(0 <= self.base < IPV4_SPACE, "prefix base out of range")
        require(self.base % self.size == 0, f"prefix base not aligned to /{self.length}")

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def __contains__(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def __str__(self) -> str:
        return f"{ip_to_str(self.base)}/{self.length}"

    def slash24s(self) -> list["Prefix"]:
        """The /24 sub-prefixes covering this prefix (itself if /24 or longer)."""
        if self.length >= 24:
            return [self]
        return [Prefix(self.base + i * 256, 24) for i in range(self.size // 256)]


@dataclass
class AddressPlan:
    """Allocates disjoint prefixes and answers IP→AS lookups.

    Allocation is sequential from ``1.0.0.0`` upward, so the plan is
    deterministic given the allocation order (which the generator fixes).
    """

    _next_base: int = 1 << 24  # start at 1.0.0.0, keep 0/8 unused
    _allocations: list[tuple[int, int, AS]] = field(default_factory=list, repr=False)
    _bases: list[int] = field(default_factory=list, repr=False)
    _by_as: dict[AS, list[Prefix]] = field(default_factory=dict, repr=False)

    def allocate(self, owner: AS, length: int) -> Prefix:
        """Allocate the next aligned ``/length`` to ``owner``."""
        size = 1 << (32 - length)
        base = (self._next_base + size - 1) // size * size
        require(base + size <= IPV4_SPACE, "IPv4 space exhausted")
        prefix = Prefix(base, length)
        self._next_base = base + size
        self._allocations.append((base, base + size, owner))
        self._bases.append(base)
        self._by_as.setdefault(owner, []).append(prefix)
        return prefix

    def prefixes_of(self, owner: AS) -> list[Prefix]:
        """All prefixes allocated to ``owner``, in allocation order."""
        return list(self._by_as.get(owner, ()))

    def owner_of(self, address: int) -> AS | None:
        """The AS owning ``address``, or None if unallocated."""
        index = bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        base, end, owner = self._allocations[index]
        if base <= address < end:
            return owner
        return None

    def announced_slash24s(self) -> list[Prefix]:
        """Every announced /24 (the traceroute campaign targets one IP per /24)."""
        result: list[Prefix] = []
        for base, end, _owner in self._allocations:
            for sub_base in range(base, end, 256):
                result.append(Prefix(sub_base, min(24, 32)))
        return result
