"""Geographic substrate: countries, cities, and distance math.

The paper weights its findings by APNIC per-country Internet-user estimates
and validates clustering against city-level hostname geohints.  This module
provides a curated world model with plausible (public-figure-scale) Internet
user counts and real city coordinates/IATA codes, so that downstream stages
(latency simulation, rDNS geohints, Figure 1 country aggregation) operate on
realistic geography.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import great_circle_m, require


@dataclass(frozen=True)
class Country:
    """A country with an ISO 3166-1 alpha-2 code and Internet-user estimate."""

    code: str
    name: str
    continent: str
    internet_users: int

    def __post_init__(self) -> None:
        require(len(self.code) == 2 and self.code.isupper(), f"bad country code {self.code!r}")
        require(self.internet_users >= 0, "internet_users must be >= 0")


@dataclass(frozen=True)
class City:
    """A city with coordinates and an IATA code (used in rDNS geohints)."""

    name: str
    country_code: str
    lat: float
    lon: float
    iata: str
    #: Relative weight of the city within its country (population-ish).
    weight: float = 1.0

    def __post_init__(self) -> None:
        require(-90.0 <= self.lat <= 90.0, f"bad latitude {self.lat}")
        require(-180.0 <= self.lon <= 180.0, f"bad longitude {self.lon}")
        require(len(self.iata) == 3 and self.iata.islower(), f"IATA must be 3 lowercase letters, got {self.iata!r}")
        require(self.weight > 0, "city weight must be > 0")

    def distance_m(self, other: "City") -> float:
        """Great-circle distance to ``other`` in metres."""
        return great_circle_m(self.lat, self.lon, other.lat, other.lon)


@dataclass
class World:
    """A set of countries and their cities, indexed for lookup."""

    countries: list[Country]
    cities: list[City]
    _country_by_code: dict[str, Country] = field(init=False, repr=False)
    _cities_by_country: dict[str, list[City]] = field(init=False, repr=False)
    _city_by_iata: dict[str, City] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._country_by_code = {c.code: c for c in self.countries}
        require(len(self._country_by_code) == len(self.countries), "duplicate country codes")
        self._cities_by_country = {}
        self._city_by_iata = {}
        for city in self.cities:
            require(city.country_code in self._country_by_code, f"city {city.name} in unknown country {city.country_code}")
            require(city.iata not in self._city_by_iata, f"duplicate IATA {city.iata}")
            self._cities_by_country.setdefault(city.country_code, []).append(city)
            self._city_by_iata[city.iata] = city
        for country in self.countries:
            require(country.code in self._cities_by_country, f"country {country.code} has no cities")

    def country(self, code: str) -> Country:
        """Return the country with ISO code ``code``."""
        return self._country_by_code[code]

    def cities_in(self, code: str) -> list[City]:
        """Return the cities of country ``code`` (at least one)."""
        return list(self._cities_by_country[code])

    def city_by_iata(self, iata: str) -> City:
        """Return the city with IATA code ``iata``."""
        return self._city_by_iata[iata]

    @property
    def total_internet_users(self) -> int:
        """Sum of Internet users across all countries."""
        return sum(c.internet_users for c in self.countries)


# Curated world data.  Internet-user counts are in thousands of users and are
# plausible 2023-scale public figures; exact values do not matter, the
# heavy-tailed cross-country distribution does.
_COUNTRY_DATA: list[tuple[str, str, str, int]] = [
    # code, name, continent, internet users (thousands)
    ("US", "United States", "NA", 307_000),
    ("CA", "Canada", "NA", 36_000),
    ("MX", "Mexico", "NA", 96_000),
    ("GT", "Guatemala", "NA", 10_500),
    ("BR", "Brazil", "SA", 181_000),
    ("AR", "Argentina", "SA", 39_000),
    ("CL", "Chile", "SA", 17_000),
    ("CO", "Colombia", "SA", 37_000),
    ("PE", "Peru", "SA", 24_000),
    ("BO", "Bolivia", "SA", 8_000),
    ("UY", "Uruguay", "SA", 3_100),
    ("EC", "Ecuador", "SA", 13_500),
    ("GB", "United Kingdom", "EU", 66_000),
    ("FR", "France", "EU", 60_000),
    ("DE", "Germany", "EU", 78_000),
    ("IT", "Italy", "EU", 50_000),
    ("ES", "Spain", "EU", 44_000),
    ("PT", "Portugal", "EU", 8_700),
    ("NL", "Netherlands", "EU", 16_500),
    ("BE", "Belgium", "EU", 10_800),
    ("CH", "Switzerland", "EU", 8_400),
    ("AT", "Austria", "EU", 8_300),
    ("PL", "Poland", "EU", 33_000),
    ("CZ", "Czechia", "EU", 9_500),
    ("RO", "Romania", "EU", 17_000),
    ("GR", "Greece", "EU", 8_900),
    ("SE", "Sweden", "EU", 9_900),
    ("NO", "Norway", "EU", 5_300),
    ("FI", "Finland", "EU", 5_200),
    ("DK", "Denmark", "EU", 5_700),
    ("IE", "Ireland", "EU", 4_800),
    ("UA", "Ukraine", "EU", 30_000),
    ("TR", "Turkey", "EU", 71_000),
    ("RU", "Russia", "EU", 127_000),
    ("NG", "Nigeria", "AF", 103_000),
    ("EG", "Egypt", "AF", 80_000),
    ("ZA", "South Africa", "AF", 43_000),
    ("KE", "Kenya", "AF", 17_000),
    ("GH", "Ghana", "AF", 17_000),
    ("MA", "Morocco", "AF", 33_000),
    ("TZ", "Tanzania", "AF", 16_000),
    ("ET", "Ethiopia", "AF", 21_000),
    ("DZ", "Algeria", "AF", 31_000),
    ("SN", "Senegal", "AF", 10_000),
    ("IN", "India", "AS", 692_000),
    ("CN", "China", "AS", 1_050_000),
    ("JP", "Japan", "AS", 103_000),
    ("KR", "South Korea", "AS", 50_000),
    ("ID", "Indonesia", "AS", 213_000),
    ("PH", "Philippines", "AS", 85_000),
    ("VN", "Vietnam", "AS", 78_000),
    ("TH", "Thailand", "AS", 61_000),
    ("MY", "Malaysia", "AS", 33_000),
    ("SG", "Singapore", "AS", 5_500),
    ("PK", "Pakistan", "AS", 87_000),
    ("BD", "Bangladesh", "AS", 67_000),
    ("SA", "Saudi Arabia", "AS", 36_000),
    ("AE", "United Arab Emirates", "AS", 9_800),
    ("IL", "Israel", "AS", 8_600),
    ("MN", "Mongolia", "AS", 2_800),
    ("KZ", "Kazakhstan", "AS", 17_000),
    ("AU", "Australia", "OC", 25_000),
    ("NZ", "New Zealand", "OC", 4_900),
    ("FJ", "Fiji", "OC", 800),
    ("GL", "Greenland", "NA", 50),
]

_CITY_DATA: list[tuple[str, str, float, float, str, float]] = [
    # name, country, lat, lon, iata, weight
    ("New York", "US", 40.71, -74.01, "nyc", 3.0),
    ("Los Angeles", "US", 34.05, -118.24, "lax", 2.5),
    ("Chicago", "US", 41.88, -87.63, "chi", 2.0),
    ("Dallas", "US", 32.78, -96.80, "dfw", 1.8),
    ("Miami", "US", 25.76, -80.19, "mia", 1.5),
    ("Seattle", "US", 47.61, -122.33, "sea", 1.2),
    ("Denver", "US", 39.74, -104.99, "den", 1.0),
    ("Atlanta", "US", 33.75, -84.39, "atl", 1.6),
    ("Toronto", "CA", 43.65, -79.38, "yyz", 2.0),
    ("Vancouver", "CA", 49.28, -123.12, "yvr", 1.0),
    ("Montreal", "CA", 45.50, -73.57, "yul", 1.3),
    ("Mexico City", "MX", 19.43, -99.13, "mex", 3.0),
    ("Guadalajara", "MX", 20.66, -103.35, "gdl", 1.2),
    ("Monterrey", "MX", 25.69, -100.32, "mty", 1.1),
    ("Guatemala City", "GT", 14.63, -90.51, "gua", 1.0),
    ("Sao Paulo", "BR", -23.55, -46.63, "gru", 3.0),
    ("Rio de Janeiro", "BR", -22.91, -43.17, "gig", 1.8),
    ("Fortaleza", "BR", -3.73, -38.52, "for", 1.0),
    ("Porto Alegre", "BR", -30.03, -51.22, "poa", 0.9),
    ("Buenos Aires", "AR", -34.60, -58.38, "eze", 2.5),
    ("Cordoba", "AR", -31.42, -64.18, "cor", 0.8),
    ("Santiago", "CL", -33.45, -70.67, "scl", 2.0),
    ("Bogota", "CO", 4.71, -74.07, "bog", 2.2),
    ("Medellin", "CO", 6.24, -75.58, "mde", 1.0),
    ("Lima", "PE", -12.05, -77.04, "lim", 2.0),
    ("La Paz", "BO", -16.49, -68.12, "lpb", 1.0),
    ("Santa Cruz", "BO", -17.78, -63.18, "vvi", 0.9),
    ("Montevideo", "UY", -34.90, -56.16, "mvd", 1.0),
    ("Quito", "EC", -0.18, -78.47, "uio", 1.0),
    ("London", "GB", 51.51, -0.13, "lhr", 3.0),
    ("Manchester", "GB", 53.48, -2.24, "man", 1.2),
    ("Birmingham", "GB", 52.49, -1.89, "bhx", 1.0),
    ("Paris", "FR", 48.86, 2.35, "cdg", 3.0),
    ("Marseille", "FR", 43.30, 5.37, "mrs", 1.0),
    ("Lyon", "FR", 45.76, 4.84, "lys", 0.9),
    ("Frankfurt", "DE", 50.11, 8.68, "fra", 2.5),
    ("Berlin", "DE", 52.52, 13.41, "ber", 1.5),
    ("Munich", "DE", 48.14, 11.58, "muc", 1.2),
    ("Hamburg", "DE", 53.55, 9.99, "ham", 1.0),
    ("Milan", "IT", 45.46, 9.19, "mxp", 2.0),
    ("Rome", "IT", 41.90, 12.50, "fco", 1.8),
    ("Madrid", "ES", 40.42, -3.70, "mad", 2.2),
    ("Barcelona", "ES", 41.39, 2.17, "bcn", 1.8),
    ("Lisbon", "PT", 38.72, -9.14, "lis", 1.0),
    ("Amsterdam", "NL", 52.37, 4.90, "ams", 2.0),
    ("Brussels", "BE", 50.85, 4.35, "bru", 1.0),
    ("Zurich", "CH", 47.38, 8.54, "zrh", 1.0),
    ("Vienna", "AT", 48.21, 16.37, "vie", 1.0),
    ("Warsaw", "PL", 52.23, 21.01, "waw", 2.0),
    ("Krakow", "PL", 50.06, 19.94, "krk", 0.8),
    ("Prague", "CZ", 50.08, 14.44, "prg", 1.0),
    ("Bucharest", "RO", 44.43, 26.10, "otp", 1.5),
    ("Athens", "GR", 37.98, 23.73, "ath", 1.0),
    ("Stockholm", "SE", 59.33, 18.06, "arn", 1.0),
    ("Oslo", "NO", 59.91, 10.75, "osl", 1.0),
    ("Helsinki", "FI", 60.17, 24.94, "hel", 1.0),
    ("Copenhagen", "DK", 55.68, 12.57, "cph", 1.0),
    ("Dublin", "IE", 53.35, -6.26, "dub", 1.0),
    ("Kyiv", "UA", 50.45, 30.52, "kbp", 2.0),
    ("Istanbul", "TR", 41.01, 28.98, "ist", 2.5),
    ("Ankara", "TR", 39.93, 32.86, "esb", 1.0),
    ("Moscow", "RU", 55.76, 37.62, "svo", 3.0),
    ("Saint Petersburg", "RU", 59.93, 30.34, "led", 1.5),
    ("Novosibirsk", "RU", 55.03, 82.92, "ovb", 0.8),
    ("Lagos", "NG", 6.52, 3.38, "los", 2.5),
    ("Abuja", "NG", 9.06, 7.50, "abv", 1.0),
    ("Cairo", "EG", 30.04, 31.24, "cai", 2.5),
    ("Johannesburg", "ZA", -26.20, 28.05, "jnb", 2.0),
    ("Cape Town", "ZA", -33.92, 18.42, "cpt", 1.2),
    ("Nairobi", "KE", -1.29, 36.82, "nbo", 1.5),
    ("Accra", "GH", 5.60, -0.19, "acc", 1.0),
    ("Casablanca", "MA", 33.57, -7.59, "cmn", 1.5),
    ("Dar es Salaam", "TZ", -6.79, 39.21, "dar", 1.0),
    ("Addis Ababa", "ET", 9.02, 38.75, "add", 1.0),
    ("Algiers", "DZ", 36.75, 3.06, "alg", 1.0),
    ("Dakar", "SN", 14.72, -17.47, "dkr", 1.0),
    ("Mumbai", "IN", 19.08, 72.88, "bom", 3.0),
    ("Delhi", "IN", 28.70, 77.10, "del", 3.0),
    ("Chennai", "IN", 13.08, 80.27, "maa", 1.8),
    ("Bangalore", "IN", 12.97, 77.59, "blr", 2.0),
    ("Kolkata", "IN", 22.57, 88.36, "ccu", 1.5),
    ("Beijing", "CN", 39.90, 116.40, "pek", 3.0),
    ("Shanghai", "CN", 31.23, 121.47, "pvg", 3.0),
    ("Guangzhou", "CN", 23.13, 113.26, "can", 2.5),
    ("Chengdu", "CN", 30.57, 104.07, "ctu", 1.5),
    ("Tokyo", "JP", 35.68, 139.69, "hnd", 3.0),
    ("Osaka", "JP", 34.69, 135.50, "kix", 1.8),
    ("Seoul", "KR", 37.57, 126.98, "icn", 3.0),
    ("Busan", "KR", 35.18, 129.08, "pus", 1.0),
    ("Jakarta", "ID", -6.21, 106.85, "cgk", 3.0),
    ("Surabaya", "ID", -7.26, 112.75, "sub", 1.2),
    ("Medan", "ID", 3.59, 98.67, "kno", 1.0),
    ("Manila", "PH", 14.60, 120.98, "mnl", 2.5),
    ("Cebu", "PH", 10.32, 123.89, "ceb", 1.0),
    ("Hanoi", "VN", 21.03, 105.85, "han", 2.0),
    ("Ho Chi Minh City", "VN", 10.82, 106.63, "sgn", 2.2),
    ("Bangkok", "TH", 13.76, 100.50, "bkk", 2.5),
    ("Kuala Lumpur", "MY", 3.14, 101.69, "kul", 2.0),
    ("Singapore", "SG", 1.35, 103.82, "sin", 1.0),
    ("Karachi", "PK", 24.86, 67.01, "khi", 2.0),
    ("Lahore", "PK", 31.55, 74.34, "lhe", 1.5),
    ("Dhaka", "BD", 23.81, 90.41, "dac", 2.5),
    ("Riyadh", "SA", 24.71, 46.68, "ruh", 2.0),
    ("Jeddah", "SA", 21.49, 39.19, "jed", 1.2),
    ("Dubai", "AE", 25.20, 55.27, "dxb", 1.5),
    ("Tel Aviv", "IL", 32.07, 34.78, "tlv", 1.0),
    ("Ulaanbaatar", "MN", 47.89, 106.91, "uln", 1.0),
    ("Almaty", "KZ", 43.24, 76.89, "ala", 1.2),
    ("Sydney", "AU", -33.87, 151.21, "syd", 2.0),
    ("Melbourne", "AU", -37.81, 144.96, "mel", 1.8),
    ("Perth", "AU", -31.95, 115.86, "per", 0.8),
    ("Auckland", "NZ", -36.85, 174.76, "akl", 1.5),
    ("Wellington", "NZ", -41.29, 174.78, "wlg", 0.8),
    ("Suva", "FJ", -18.14, 178.44, "suv", 1.0),
    ("Nuuk", "GL", 64.18, -51.72, "goh", 1.0),
]


def default_world() -> World:
    """Build the curated :class:`World` used by the default scenarios."""
    countries = [Country(code, name, continent, users * 1000) for code, name, continent, users in _COUNTRY_DATA]
    cities = [City(name, cc, lat, lon, iata, weight) for name, cc, lat, lon, iata, weight in _CITY_DATA]
    return World(countries=countries, cities=cities)
