"""Synthetic Internet topology substrate.

The real study measures the actual Internet.  This package generates a
seeded, ground-truth-annotated stand-in: countries and cities with
coordinates (:mod:`repro.topology.geo`), autonomous systems with roles and
user populations (:mod:`repro.topology.asn`), inter-AS business relationships
and valley-free routing (:mod:`repro.topology.relationships`), Internet
exchange points (:mod:`repro.topology.ixp`), colocation facilities and racks
(:mod:`repro.topology.facilities`), an IPv4 address plan
(:mod:`repro.topology.prefixes`), and a whole-Internet generator tying them
together (:mod:`repro.topology.generator`).
"""

from repro.topology.asn import AS, ASRole
from repro.topology.facilities import Facility, Rack
from repro.topology.generator import Internet, InternetConfig, generate_internet
from repro.topology.geo import City, Country, World, default_world
from repro.topology.ixp import IXP
from repro.topology.prefixes import Prefix
from repro.topology.relationships import ASGraph, Relationship

__all__ = [
    "AS",
    "ASGraph",
    "ASRole",
    "City",
    "Country",
    "Facility",
    "IXP",
    "Internet",
    "InternetConfig",
    "Prefix",
    "Rack",
    "Relationship",
    "World",
    "default_world",
    "generate_internet",
]
