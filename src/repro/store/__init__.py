"""Durable, content-addressed persistence for pipeline studies.

The package has two pieces:

* :mod:`repro.store.keys` — canonical config hashing.
  :func:`config_fingerprint` identifies a config exactly (it keys the
  process-memory cache in :mod:`repro.experiments.scenarios`);
  :func:`study_key` is the on-disk content address, which normalises
  execution-only knobs (backend, workers) the differential harness
  proves artifact-neutral.
* :mod:`repro.store.store` — :class:`StudyStore`, the on-disk store:
  atomic writes, digest-verified loads with quarantine, LRU/size-bounded
  garbage collection, and ``store.*`` metrics.
* :mod:`repro.store.stages` — :class:`StageStore`, the finer-grained
  per-stage JSON cache the incremental timeline engine
  (:mod:`repro.timeline`) layers on top; keys from :func:`stage_key`.

Together with :mod:`repro.sweep` this forms the durable-execution layer:
every completed sweep cell checkpoints here, and a restarted campaign
skips everything already present.
"""

from repro.store.keys import (
    STORE_SCHEMA,
    canonical_config_json,
    config_fingerprint,
    study_key,
)
from repro.store.stages import STAGE_SCHEMA, StageStore, stage_key
from repro.store.store import StoreStats, StudyStore

__all__ = [
    "STAGE_SCHEMA",
    "STORE_SCHEMA",
    "StageStore",
    "StoreStats",
    "StudyStore",
    "canonical_config_json",
    "config_fingerprint",
    "stage_key",
    "study_key",
]
