"""The on-disk, content-addressed study store.

Layout of a store directory::

    index.json                   LRU bookkeeping: key -> {seq, bytes}
    objects/<k2>/<key>/          one archive per study (io.archive format,
                                 plus store_entry.json provenance)
    tmp/                         in-flight writes (crash debris is inert)
    quarantine/                  entries that failed their digest check

Entries are keyed by :func:`repro.store.keys.study_key` — a canonical
hash of the artifact-relevant config plus the package version — so a hit
is *definitionally* the study that config would produce.  Writes are
atomic (build in ``tmp/``, then one ``os.rename`` into place): a killed
process leaves either a complete entry or no entry, never a torn one,
which is what makes sweep campaigns resumable.  Loads verify every file
digest; corrupt entries are moved to ``quarantine/`` and reported as
misses, so a bad disk degrades to recomputation rather than bad science.

The filesystem is authoritative: ``index.json`` only orders entries for
LRU eviction and is rebuilt from the object directories whenever it is
missing or stale (concurrent writers from sweep workers may race on it;
losing an index row never loses an artifact).

Hit/miss/write/evict/corruption counts land on a
:class:`~repro.obs.metrics.MetricsRegistry` (the process-wide registry by
default) under ``store.*``.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro import __version__
from repro.core.pipeline import PrecomputedArtifacts, Study, StudyConfig, run_study
from repro.faults import FaultPlan, InjectedFault, raise_injected, stable_index
from repro.io.archive import ArchiveCorruptError, load_archive, save_archive
from repro.obs import MetricsRegistry, Telemetry, global_metrics
from repro.resilience import RetryPolicy, call_with_retry
from repro.store.keys import STORE_SCHEMA, canonical_config_json, study_key

_INDEX_NAME = "index.json"
_ENTRY_NAME = "store_entry.json"


def _poison_entry(path: Path) -> None:
    """Flip the leading bytes of the entry's first data file (chaos only).

    The damage is exactly what a bad disk would do: the file still exists
    but its sha256 no longer matches the manifest, so the next verified
    load raises :class:`ArchiveCorruptError` and the entry is quarantined.
    """
    for file in sorted(path.iterdir()):
        if not file.is_file() or file.name in (_ENTRY_NAME, "manifest.json"):
            continue
        data = file.read_bytes()
        poisoned = bytes(byte ^ 0xFF for byte in data[:16]) + data[16:]
        file.write_bytes(poisoned if poisoned else b"\x00")
        return


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one store directory."""

    entries: int
    total_bytes: int

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        return {"entries": self.entries, "total_bytes": self.total_bytes}


class StudyStore:
    """Content-addressed persistence for pipeline studies.

    ``max_entries`` / ``max_bytes`` bound the store; when set, every
    :meth:`put` enforces them by evicting least-recently-used entries
    (:meth:`gc`).  ``max_quarantine_entries`` / ``max_quarantine_age_s``
    bound the ``quarantine/`` directory the same way (quarantined entries
    are only kept for post-mortems — they are never read back).
    ``metrics`` receives the ``store.*`` counters (defaults to the
    process-wide registry).

    ``retry`` (a :class:`~repro.resilience.RetryPolicy`) makes
    :meth:`get` re-attempt loads that fail with retryable errors;
    ``faults`` wires the ``store.load`` injection site for chaos tests
    (transient/fatal load errors, or on-disk corruption that must trip
    the digest check and quarantine the entry).
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        max_quarantine_entries: int | None = None,
        max_quarantine_age_s: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else global_metrics()
        self.faults = faults
        self.retry = retry
        self.max_quarantine_entries = max_quarantine_entries
        self.max_quarantine_age_s = max_quarantine_age_s

    # -- paths -----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Where completed entries live."""
        return self.root / "objects"

    def entry_path(self, key: str) -> Path:
        """The directory a study with content address ``key`` occupies."""
        return self.objects_dir / key[:2] / key

    def key_for(self, config: StudyConfig) -> str:
        """The content address for ``config`` (see :func:`study_key`)."""
        return study_key(config)

    # -- reads -----------------------------------------------------------------

    def contains(self, config: StudyConfig) -> bool:
        """Whether a completed entry for ``config`` exists (no LRU touch)."""
        return self.contains_key(self.key_for(config))

    def contains_key(self, key: str) -> bool:
        """Whether a completed entry for ``key`` exists (no LRU touch)."""
        return (self.entry_path(key) / _ENTRY_NAME).exists()

    def get(self, config: StudyConfig, telemetry: Telemetry | None = None) -> Study | None:
        """The stored study for ``config``, rehydrated; ``None`` on miss.

        A hit verifies every archive digest, then replays the cheap
        pipeline stages around the persisted matrix and clusterings
        (see :class:`~repro.core.pipeline.PrecomputedArtifacts`), so the
        returned object is a full :class:`Study` whose exported artifacts
        are byte-identical to a fresh run's.  Corrupt entries are
        quarantined and reported as misses.
        """
        key = self.key_for(config)
        path = self.entry_path(key)
        if not self.contains_key(key):
            self.metrics.count("store.misses")
            return None

        def _load(attempt: int):
            self._trip_load_fault(key, path, attempt)
            return load_archive(path, verify=True)

        try:
            if self.retry is not None:
                loaded = call_with_retry(
                    _load,
                    self.retry,
                    on_retry=lambda _attempt, _error: self.metrics.count("store.retries"),
                )
            else:
                loaded = _load(0)
            precomputed = PrecomputedArtifacts(
                rtt_ms=loaded.rtt_ms,
                target_ips=tuple(loaded.target_ips),
                clusterings=loaded.clusterings,
            )
            study = run_study(config, telemetry=telemetry, precomputed=precomputed)
        except InjectedFault:
            # An injected load failure the retries (if any) could not
            # clear: the entry itself is fine, so degrade to a miss and
            # recompute rather than quarantining good bytes.
            self.metrics.count("store.load_failures")
            self.metrics.count("store.misses")
            return None
        except (ArchiveCorruptError, ValueError, KeyError, OSError) as error:
            self._quarantine(key, path, error)
            self.metrics.count("store.corruptions")
            self.metrics.count("store.misses")
            return None
        self._touch(key)
        self.metrics.count("store.hits")
        return study

    # -- writes ----------------------------------------------------------------

    def put(self, study: Study) -> str:
        """Persist ``study`` (idempotent); returns its content address.

        The archive is written under ``tmp/`` and renamed into place in
        one step, so concurrent writers (sweep workers) and crashes can
        never publish a partial entry.

        A study degraded by quarantined shards is *not* persisted (its
        artifacts are not what the config would normally produce — the
        losses are transient execution accidents, not properties of the
        config); the key is returned without a write so a later, healthy
        run can fill the slot.
        """
        key = self.key_for(study.config)
        if study.coverage.shards_lost > 0:
            self.metrics.count("store.degraded_skipped")
            return key
        final = self.entry_path(key)
        if self.contains_key(key):
            self._touch(key)
            return key
        staging = self.root / "tmp" / f"{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        staging.mkdir(parents=True, exist_ok=True)
        save_archive(study, staging)
        entry = {
            "schema": STORE_SCHEMA,
            "key": key,
            "version": __version__,
            "config": json.loads(canonical_config_json(study.config)),
        }
        (staging / _ENTRY_NAME).write_text(json.dumps(entry, sort_keys=True, indent=2))
        size = sum(p.stat().st_size for p in staging.iterdir() if p.is_file())
        final.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(staging, final)
        except OSError:
            # Lost a publish race: another writer landed the same content.
            shutil.rmtree(staging, ignore_errors=True)
            self._touch(key)
            return key
        self._touch(key, size=size)
        self.metrics.count("store.writes")
        self.metrics.count("store.bytes_written", size)
        if any(
            bound is not None
            for bound in (
                self.max_entries,
                self.max_bytes,
                self.max_quarantine_entries,
                self.max_quarantine_age_s,
            )
        ):
            self.gc()
        return key

    # -- maintenance -----------------------------------------------------------

    def gc(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_quarantine_entries: int | None = None,
        max_quarantine_age_s: float | None = None,
    ) -> list[str]:
        """Evict least-recently-used entries until within the given bounds.

        ``None`` bounds fall back to the store's configured limits; all
        ``None`` means no eviction.  Quarantined entries are pruned by the
        quarantine bounds (oldest first by count, plus anything older than
        the age bound — they exist only for post-mortems).  Returns the
        evicted *object* keys, oldest first.
        """
        max_entries = max_entries if max_entries is not None else self.max_entries
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        self._prune_quarantine(max_quarantine_entries, max_quarantine_age_s)
        if max_entries is None and max_bytes is None:
            return []
        index = self._load_index()
        entries = sorted(index["entries"].items(), key=lambda kv: kv[1]["seq"])
        total = sum(meta["bytes"] for _, meta in entries)
        evicted: list[str] = []
        while entries and (
            (max_entries is not None and len(entries) > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            key, meta = entries.pop(0)
            shutil.rmtree(self.entry_path(key), ignore_errors=True)
            del index["entries"][key]
            total -= meta["bytes"]
            evicted.append(key)
            self.metrics.count("store.evictions")
        if evicted:
            self._write_index(index)
        return evicted

    def stats(self) -> StoreStats:
        """Entry count and total size, from the (reconciled) index."""
        index = self._load_index()
        return StoreStats(
            entries=len(index["entries"]),
            total_bytes=sum(meta["bytes"] for meta in index["entries"].values()),
        )

    def keys(self) -> list[str]:
        """All stored content addresses, least recently used first."""
        index = self._load_index()
        return [key for key, _ in sorted(index["entries"].items(), key=lambda kv: kv[1]["seq"])]

    # -- internals -------------------------------------------------------------

    def _trip_load_fault(self, key: str, path: Path, attempt: int) -> None:
        """Apply a planned ``store.load`` fault to this load attempt.

        ``error`` specs raise (transient ones clear after their
        ``fail_attempts``); ``corrupt`` specs poison the entry's bytes on
        disk so the digest check trips naturally and the ordinary
        quarantine path takes over.
        """
        if self.faults is None:
            return
        spec = self.faults.decide("store.load", stable_index(key), attempt)
        if spec is None:
            return
        if spec.kind == "corrupt":
            _poison_entry(path)
        elif spec.kind == "error":
            raise_injected(spec, "store.load", stable_index(key))

    def _prune_quarantine(
        self, max_entries: int | None = None, max_age_s: float | None = None
    ) -> None:
        """Delete quarantined entries past the configured count/age bounds."""
        max_entries = (
            max_entries if max_entries is not None else self.max_quarantine_entries
        )
        max_age_s = max_age_s if max_age_s is not None else self.max_quarantine_age_s
        if max_entries is None and max_age_s is None:
            return
        quarantine = self.root / "quarantine"
        if not quarantine.exists():
            return
        entries = sorted(
            (entry for entry in quarantine.iterdir() if entry.is_dir()),
            key=lambda entry: (entry.stat().st_mtime, entry.name),
        )
        now = time.time()
        doomed: list[Path] = []
        if max_age_s is not None:
            doomed.extend(e for e in entries if now - e.stat().st_mtime > max_age_s)
        if max_entries is not None and len(entries) - len(doomed) > max_entries:
            survivors = [e for e in entries if e not in doomed]
            doomed.extend(survivors[: len(survivors) - max_entries])
        for entry in doomed:
            shutil.rmtree(entry, ignore_errors=True)
            self.metrics.count("store.quarantine_pruned")

    def _quarantine(self, key: str, path: Path, error: Exception) -> None:
        """Move a bad entry aside so the next run recomputes it."""
        destination = self.root / "quarantine" / f"{key}.{uuid.uuid4().hex[:8]}"
        destination.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(path, destination)
            (destination / "quarantine_reason.txt").write_text(f"{type(error).__name__}: {error}\n")
        except OSError:
            shutil.rmtree(path, ignore_errors=True)
        index = self._load_index()
        if key in index["entries"]:
            del index["entries"][key]
            self._write_index(index)

    def _touch(self, key: str, size: int | None = None) -> None:
        """Record an access (or a new entry) for LRU ordering."""
        index = self._load_index()
        meta = index["entries"].get(key, {"bytes": 0})
        if size is not None:
            meta["bytes"] = size
        meta["seq"] = index["next_seq"]
        index["next_seq"] += 1
        index["entries"][key] = meta
        self._write_index(index)

    def _load_index(self) -> dict:
        """The LRU index, reconciled against the object directories."""
        index = {"format": STORE_SCHEMA, "next_seq": 0, "entries": {}}
        path = self.root / _INDEX_NAME
        if path.exists():
            try:
                raw = json.loads(path.read_text())
                index["next_seq"] = int(raw.get("next_seq", 0))
                index["entries"] = {
                    str(key): {"seq": int(meta["seq"]), "bytes": int(meta["bytes"])}
                    for key, meta in raw.get("entries", {}).items()
                }
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                index = {"format": STORE_SCHEMA, "next_seq": 0, "entries": {}}
        # Reconcile: the filesystem wins.  Entries that vanished are dropped;
        # entries the index never saw (concurrent writers, lost index) are
        # adopted with a fresh sequence number.
        on_disk = {}
        if self.objects_dir.exists():
            for bucket in sorted(self.objects_dir.iterdir()):
                for entry_dir in sorted(bucket.iterdir()):
                    if (entry_dir / _ENTRY_NAME).exists():
                        on_disk[entry_dir.name] = entry_dir
        index["entries"] = {k: v for k, v in index["entries"].items() if k in on_disk}
        for key, entry_dir in on_disk.items():
            if key not in index["entries"]:
                size = sum(p.stat().st_size for p in entry_dir.iterdir() if p.is_file())
                index["entries"][key] = {"seq": index["next_seq"], "bytes": size}
                index["next_seq"] += 1
        return index

    def _write_index(self, index: dict) -> None:
        """Atomically replace ``index.json``."""
        self.root.mkdir(parents=True, exist_ok=True)
        staging = self.root / f".{_INDEX_NAME}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        staging.write_text(json.dumps(index, sort_keys=True, indent=2))
        os.replace(staging, self.root / _INDEX_NAME)
