"""Per-stage content-addressed cache for the incremental timeline engine.

:class:`~repro.store.store.StudyStore` persists whole studies; the
longitudinal engine (:mod:`repro.timeline`) needs something finer — one
entry per *stage invocation* (a scan of one deployment, a latency
campaign for one ISP, a clustering of one offnet set), so that epoch
N+1 can reuse every stage whose inputs did not change between epochs.

Entries are small JSON payloads addressed by :func:`stage_key`, a
canonical hash over ``(schema, version, kind, payload-fingerprint)``.
Because the key covers *every* input the stage reads (including the
seed material its randomness is derived from), a hit is definitionally
the value the stage would recompute — which is what lets the
differential harness prove incremental ≡ full byte-identically.

Layout of a stage-store directory::

    objects/<k2>/<key>.json      one JSON entry per stage invocation

Writes are atomic (temp file + ``os.replace``), loads verify the
payload digest recorded at write time and degrade corrupt entries to
misses (the bad file is unlinked so the slot heals on rewrite).
Hit/miss/write counts land both on a
:class:`~repro.obs.metrics.MetricsRegistry` under
``stage.<kind>.hits`` etc. and on the instance-local :attr:`counters`
dict (benchmarks assert on exact per-stage hit counts).
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any

from repro import __version__
from repro.obs import MetricsRegistry, global_metrics
from repro.store.keys import STORE_SCHEMA

#: Schema tag for stage entries (bump on incompatible layout changes).
STAGE_SCHEMA = "repro-stage-v1"


def _canonical_json(value: Any) -> str:
    """Deterministic JSON text (sorted keys, no float repr surprises)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stage_key(kind: str, payload: Any) -> str:
    """The content address of one stage invocation.

    ``payload`` must be JSON-serialisable and must enumerate everything
    the stage's output depends on: config knobs, input fingerprints, and
    the seed material its randomness derives from.  The package version
    and store schema participate so caches never leak across releases.
    """
    material = _canonical_json(
        {
            "kind": kind,
            "payload": payload,
            "schema": f"{STORE_SCHEMA}/{STAGE_SCHEMA}",
            "version": __version__,
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()


class StageStore:
    """Content-addressed JSON store for per-stage timeline artifacts.

    A plain directory of small JSON files — no LRU index, no archive
    format — because stage entries are tiny and a whole timeline's worth
    fits comfortably on disk.  ``metrics`` receives ``stage.*`` counters
    (defaults to the process-wide registry); :attr:`counters` mirrors
    them per instance so tests and benchmarks can assert exact reuse.
    """

    def __init__(self, root: str | Path, metrics: MetricsRegistry | None = None) -> None:
        self.root = Path(root)
        self.metrics = metrics if metrics is not None else global_metrics()
        #: Instance-local ``{"<kind>.hits": n, ...}`` counters.
        self.counters: dict[str, int] = {}

    # -- paths -----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Where completed entries live."""
        return self.root / "objects"

    def entry_path(self, key: str) -> Path:
        """The file an entry with content address ``key`` occupies."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- counters --------------------------------------------------------------

    def _count(self, kind: str, event: str) -> None:
        name = f"{kind}.{event}"
        self.counters[name] = self.counters.get(name, 0) + 1
        self.metrics.count(f"stage.{name}")

    def counter(self, kind: str, event: str) -> int:
        """The instance-local count of ``event`` (hits/misses/writes) for ``kind``."""
        return self.counters.get(f"{kind}.{event}", 0)

    # -- reads -----------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a completed entry for ``key`` exists (no counter touch)."""
        return self.entry_path(key).exists()

    def get(self, kind: str, key: str) -> Any | None:
        """The stored payload for ``key``; ``None`` on miss.

        The payload digest recorded at write time is verified; a corrupt
        or torn entry is unlinked and reported as a miss, so a bad disk
        degrades to recomputation.
        """
        path = self.entry_path(key)
        try:
            entry = json.loads(path.read_text())
            payload = entry["payload"]
            digest = hashlib.sha256(_canonical_json(payload).encode()).hexdigest()
            if entry["sha256"] != digest or entry["kind"] != kind:
                raise ValueError(f"stage entry {key} failed verification")
        except FileNotFoundError:
            self._count(kind, "misses")
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            path.unlink(missing_ok=True)
            self._count(kind, "corruptions")
            self._count(kind, "misses")
            return None
        self._count(kind, "hits")
        return payload

    # -- writes ----------------------------------------------------------------

    def put(self, kind: str, key: str, payload: Any) -> str:
        """Persist ``payload`` under ``key`` (idempotent); returns ``key``.

        Written to a temp file then published with one ``os.replace``,
        so concurrent writers (timeline shards racing on a shared stage)
        and crashes can never land a torn entry.
        """
        path = self.entry_path(key)
        if path.exists():
            return key
        entry = {
            "schema": STAGE_SCHEMA,
            "kind": kind,
            "key": key,
            "sha256": hashlib.sha256(_canonical_json(payload).encode()).hexdigest(),
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        staging.write_text(json.dumps(entry, sort_keys=True))
        os.replace(staging, path)
        self._count(kind, "writes")
        return key

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Entry count and total bytes on disk."""
        entries = 0
        total = 0
        if self.objects_dir.exists():
            for bucket in self.objects_dir.iterdir():
                for file in bucket.glob("*.json"):
                    entries += 1
                    total += file.stat().st_size
        return {"entries": entries, "total_bytes": total}
