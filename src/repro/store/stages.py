"""Per-stage content-addressed cache for the incremental timeline engine.

:class:`~repro.store.store.StudyStore` persists whole studies; the
longitudinal engine (:mod:`repro.timeline`) needs something finer — one
entry per *stage invocation* (a scan of one deployment, a latency
campaign for one ISP, a clustering of one offnet set), so that epoch
N+1 can reuse every stage whose inputs did not change between epochs.

Entries are small JSON payloads addressed by :func:`stage_key`, a
canonical hash over ``(schema, version, kind, payload-fingerprint)``.
Because the key covers *every* input the stage reads (including the
seed material its randomness is derived from), a hit is definitionally
the value the stage would recompute — which is what lets the
differential harness prove incremental ≡ full byte-identically.

Layout of a stage-store directory::

    objects/<k2>/<key>.json      one JSON entry per stage invocation
    quarantine/<key>.<tag>.json  entries that failed their digest check

Writes are atomic (temp file + ``os.replace``), loads verify the
payload digest recorded at write time and degrade corrupt entries to
misses (the bad file is moved to ``quarantine/`` for post-mortems, so
the slot heals on rewrite).  :meth:`StageStore.gc` bounds the store by
entry count / total bytes / age and sweeps the quarantine the same way
:meth:`repro.store.store.StudyStore.gc` does.  Hit/miss/write counts
land both on a :class:`~repro.obs.metrics.MetricsRegistry` under
``stage.<kind>.hits`` etc. and on the instance-local :attr:`counters`
dict (benchmarks assert on exact per-stage hit counts).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
from pathlib import Path
from typing import Any

from repro import __version__
from repro.obs import MetricsRegistry, global_metrics
from repro.store.keys import STORE_SCHEMA

#: Schema tag for stage entries (bump on incompatible layout changes).
STAGE_SCHEMA = "repro-stage-v1"


def _canonical_json(value: Any) -> str:
    """Deterministic JSON text (sorted keys, no float repr surprises)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def stage_key(kind: str, payload: Any) -> str:
    """The content address of one stage invocation.

    ``payload`` must be JSON-serialisable and must enumerate everything
    the stage's output depends on: config knobs, input fingerprints, and
    the seed material its randomness derives from.  The package version
    and store schema participate so caches never leak across releases.
    """
    material = _canonical_json(
        {
            "kind": kind,
            "payload": payload,
            "schema": f"{STORE_SCHEMA}/{STAGE_SCHEMA}",
            "version": __version__,
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()


class StageStore:
    """Content-addressed JSON store for per-stage timeline artifacts.

    A plain directory of small JSON files — no LRU index, no archive
    format — because stage entries are tiny and a whole timeline's worth
    fits comfortably on disk.  ``metrics`` receives ``stage.*`` counters
    (defaults to the process-wide registry); :attr:`counters` mirrors
    them per instance so tests and benchmarks can assert exact reuse.
    """

    def __init__(
        self,
        root: str | Path,
        metrics: MetricsRegistry | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        max_quarantine_entries: int | None = None,
        max_quarantine_age_s: float | None = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics if metrics is not None else global_metrics()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        self.max_quarantine_entries = max_quarantine_entries
        self.max_quarantine_age_s = max_quarantine_age_s
        #: Instance-local ``{"<kind>.hits": n, ...}`` counters.
        self.counters: dict[str, int] = {}

    # -- paths -----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        """Where completed entries live."""
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        """Where entries that failed verification are parked."""
        return self.root / "quarantine"

    def entry_path(self, key: str) -> Path:
        """The file an entry with content address ``key`` occupies."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- counters --------------------------------------------------------------

    def _count(self, kind: str, event: str) -> None:
        name = f"{kind}.{event}"
        self.counters[name] = self.counters.get(name, 0) + 1
        self.metrics.count(f"stage.{name}")

    def counter(self, kind: str, event: str) -> int:
        """The instance-local count of ``event`` (hits/misses/writes) for ``kind``."""
        return self.counters.get(f"{kind}.{event}", 0)

    # -- reads -----------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a completed entry for ``key`` exists (no counter touch)."""
        return self.entry_path(key).exists()

    def get(self, kind: str, key: str) -> Any | None:
        """The stored payload for ``key``; ``None`` on miss.

        The payload digest recorded at write time is verified; a corrupt
        or torn entry is quarantined and reported as a miss, so a bad
        disk degrades to recomputation while the evidence survives for
        post-mortems (bounded by :meth:`gc`).
        """
        path = self.entry_path(key)
        try:
            entry = json.loads(path.read_text())
            payload = entry["payload"]
            digest = hashlib.sha256(_canonical_json(payload).encode()).hexdigest()
            if entry["sha256"] != digest or entry["kind"] != kind:
                raise ValueError(f"stage entry {key} failed verification")
        except FileNotFoundError:
            self._count(kind, "misses")
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            self._quarantine(key, path)
            self._count(kind, "corruptions")
            self._count(kind, "misses")
            return None
        self._count(kind, "hits")
        return payload

    # -- writes ----------------------------------------------------------------

    def put(self, kind: str, key: str, payload: Any) -> str:
        """Persist ``payload`` under ``key`` (idempotent); returns ``key``.

        Written to a temp file then published with one ``os.replace``,
        so concurrent writers (timeline shards racing on a shared stage)
        and crashes can never land a torn entry.
        """
        path = self.entry_path(key)
        if path.exists():
            return key
        entry = {
            "schema": STAGE_SCHEMA,
            "kind": kind,
            "key": key,
            "sha256": hashlib.sha256(_canonical_json(payload).encode()).hexdigest(),
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        staging.write_text(json.dumps(entry, sort_keys=True))
        os.replace(staging, path)
        self._count(kind, "writes")
        return key

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Entry count and total bytes on disk."""
        entries = 0
        total = 0
        if self.objects_dir.exists():
            for bucket in self.objects_dir.iterdir():
                for file in bucket.glob("*.json"):
                    entries += 1
                    total += file.stat().st_size
        return {"entries": entries, "total_bytes": total}

    def gc(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        max_quarantine_entries: int | None = None,
        max_quarantine_age_s: float | None = None,
    ) -> list[str]:
        """Evict oldest entries until within the given bounds.

        ``None`` bounds fall back to the store's configured limits; all
        ``None`` means no eviction.  Stage entries carry no access index
        (they are immutable content-addressed files), so "oldest" is by
        file mtime — write order, which for timeline campaigns is also
        epoch order, the natural staleness axis.  Quarantined entries
        are pruned by the quarantine bounds (anything past the age
        bound, then oldest-first down to the count bound).  Returns the
        evicted object keys, oldest first.
        """
        max_entries = max_entries if max_entries is not None else self.max_entries
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_age_s = max_age_s if max_age_s is not None else self.max_age_s
        self._prune_quarantine(max_quarantine_entries, max_quarantine_age_s)
        if max_entries is None and max_bytes is None and max_age_s is None:
            return []
        files: list[tuple[float, str, Path, int]] = []
        if self.objects_dir.exists():
            for bucket in sorted(self.objects_dir.iterdir()):
                for file in sorted(bucket.glob("*.json")):
                    stat = file.stat()
                    files.append((stat.st_mtime, file.stem, file, stat.st_size))
        files.sort(key=lambda item: (item[0], item[1]))
        total = sum(size for _, _, _, size in files)
        now = time.time()
        evicted: list[str] = []

        def _evict(mtime: float, key: str, path: Path, size: int) -> None:
            nonlocal total
            path.unlink(missing_ok=True)
            total -= size
            evicted.append(key)
            self._count("gc", "evictions")

        if max_age_s is not None:
            stale = [item for item in files if now - item[0] > max_age_s]
            for item in stale:
                _evict(*item)
            files = [item for item in files if now - item[0] <= max_age_s]
        while files and (
            (max_entries is not None and len(files) > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            _evict(*files.pop(0))
        return evicted

    def _prune_quarantine(
        self, max_entries: int | None = None, max_age_s: float | None = None
    ) -> None:
        """Delete quarantined entries past the configured count/age bounds."""
        max_entries = (
            max_entries if max_entries is not None else self.max_quarantine_entries
        )
        max_age_s = max_age_s if max_age_s is not None else self.max_quarantine_age_s
        if max_entries is None and max_age_s is None:
            return
        if not self.quarantine_dir.exists():
            return
        entries = sorted(
            (entry for entry in self.quarantine_dir.iterdir() if entry.is_file()),
            key=lambda entry: (entry.stat().st_mtime, entry.name),
        )
        now = time.time()
        doomed: list[Path] = []
        if max_age_s is not None:
            doomed.extend(e for e in entries if now - e.stat().st_mtime > max_age_s)
        if max_entries is not None and len(entries) - len(doomed) > max_entries:
            survivors = [e for e in entries if e not in doomed]
            doomed.extend(survivors[: len(survivors) - max_entries])
        for entry in doomed:
            entry.unlink(missing_ok=True)
            self._count("gc", "quarantine_pruned")

    def _quarantine(self, key: str, path: Path) -> None:
        """Move a bad entry aside so the next access recomputes it."""
        destination = self.quarantine_dir / f"{key}.{uuid.uuid4().hex[:8]}.json"
        destination.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, destination)
        except OSError:
            path.unlink(missing_ok=True)
