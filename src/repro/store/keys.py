"""Canonical, content-addressed keys for study configurations.

Two layers of identity:

* :func:`config_fingerprint` — a stable hash over **every** field of a
  :class:`~repro.core.pipeline.StudyConfig`.  Two configs that differ in
  any knob (including the execution backend) get different fingerprints;
  this keys the process-memory front cache so a study object always
  reports exactly the config it was asked for.
* :func:`study_key` — the on-disk content address.  It hashes only the
  *artifact-relevant* knobs: the parallel backend, worker count, and
  shard timeout are normalised away because the differential harnesses
  (``tests/test_parallel_equivalence.py``, ``tests/test_chaos.py``) prove
  they never change the artifacts, while chunk sizes stay in the key
  because they shape the shard RNG streams.  The resilience config is
  execution-only and normalised away entirely; a fault plan keeps only
  its *permanent data* specs (transient faults are retried away without
  an artifact trace, and ``store.load`` faults never touch the pipeline's
  outputs).  The package version and a store schema tag are folded in,
  so a code upgrade can never serve stale artifacts.

Both hashes are computed over canonical JSON (sorted keys, no whitespace
variance) of the dataclass tree, so they are stable across processes,
platforms, and dict orderings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

from repro import __version__
from repro.core.pipeline import StudyConfig

#: Bump when the store layout or key derivation changes incompatibly.
STORE_SCHEMA = "repro-store-v2"


def _jsonable(value: Any) -> Any:
    """Convert a config value tree into deterministic JSON-ready form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for a store key: {value!r}")


def canonical_config_json(config: StudyConfig) -> str:
    """The canonical JSON text for ``config`` (full fidelity)."""
    return json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config: StudyConfig) -> str:
    """Hash over every config field; distinguishes even backend/workers."""
    return _sha256(canonical_config_json(config))


def _artifact_relevant_faults(faults: dict | None) -> dict | None:
    """The fault-plan dict reduced to specs that can change artifacts.

    Transient specs are retried away (the chaos harness proves the exports
    stay byte-identical) and ``store.load`` faults only ever cause
    quarantine-and-recompute, so neither belongs in a content address.
    Permanent data faults (drops, permanent shard faults) stay: they
    genuinely change what the pipeline produces.
    """
    if faults is None:
        return None
    kept = [
        spec
        for spec in faults["specs"]
        if spec["site"] != "store.load" and spec["fail_attempts"] is None
    ]
    if not kept:
        return None
    return dict(faults, specs=kept)


def _artifact_view(config: StudyConfig) -> dict:
    """The config dict with artifact-irrelevant execution knobs normalised."""
    view = _jsonable(config)
    view["parallel"] = dict(
        view["parallel"], backend="serial", workers=1, shard_timeout_s=None
    )
    view["resilience"] = None
    view["faults"] = _artifact_relevant_faults(view["faults"])
    return view


def study_key(config: StudyConfig) -> str:
    """The content address a study computed from ``config`` lives under."""
    payload = {
        "schema": STORE_SCHEMA,
        "version": __version__,
        "config": _artifact_view(config),
    }
    return _sha256(json.dumps(payload, sort_keys=True, separators=(",", ":")))
