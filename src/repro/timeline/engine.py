"""The incremental recomputation engine.

Per-quarter analysis decomposes into content-addressed stages layered on
:class:`repro.store.StageStore`:

* ``detect`` — one entry per (hypergiant, ISP) deployment: which of its
  offnet IPs answer the scan and present a matching certificate.  Keyed
  by the deployment's exact IP set, so a deployment unchanged between
  quarters (the common case under monotone growth) is scanned once.
* ``measure`` — one entry per ISP: the (vantage point × IP) RTT matrix
  for the ISP's detected offnets.  Keyed by the detected IP set and the
  campaign knobs; only ISPs whose offnet set changed are re-measured.
* ``cluster`` — one entry per ISP: the Appendix-A filter outcome and the
  per-xi site labels.  Keyed by the measure key plus the clustering
  knobs, checked *first* so a fully-unchanged ISP costs one file read.
* ``epoch`` — one entry per quarter: the aggregated series row (Table 1
  counts, cohosting, Figure-1 panels, concentration, coverage).  This is
  the campaign cell and resume token.

Determinism invariants:

* every stage's randomness is seeded from its *content key* (via
  blake2b), never from a shared root stream — so stage outputs are pure
  functions of their inputs and the cache can only ever substitute a
  value for the identical computation;
* per-server scan-response coins hash ``(seed, ip)`` directly, so a
  server's fate never depends on its siblings (a capacity event adds
  servers without re-rolling the survivors);
* stage payloads are canonical JSON with string keys only, so a cached
  row round-trips byte-identically through ``json`` — the property the
  differential harness (``tests/test_timeline.py``) checks end-to-end.

Faults are deliberately *not* injected inside stages (a perturbed stage
output would poison the cache under its honest key); chaos enters at the
``timeline.shard`` site around whole epoch cells instead.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro._util import make_rng, require, spawn_rng
from repro.clustering.sites import ClusteringConfig, ClusteringMemo, SiteClustering, cluster_isp_offnets
from repro.core.concentration import coverage_statistics, single_facility_concentration
from repro.deployment.hypergiants import DEFAULT_HYPERGIANT_PROFILES
from repro.deployment.placement import PlacementConfig
from repro.experiments.figure1 import figure1_panels
from repro.experiments.section32 import cohosting_counts
from repro.faults import FaultPlan
from repro.mlab.matrix import LatencyCampaignConfig, LatencyMatrix, apply_quality_filters, measure_offnets
from repro.mlab.vantage import VantagePoint, build_vantage_points
from repro.obs import Telemetry, ensure_telemetry
from repro.parallel import ParallelConfig
from repro.population.users import PopulationDataset, build_population_dataset
from repro.resilience import ResilienceConfig
from repro.scan.certificates import certificate_for_server
from repro.scan.detection import DetectedOffnet, OffnetInventory
from repro.scan.fingerprints import FingerprintRule, fingerprint_rules
from repro.scan.scanner import ScanConfig
from repro.store import StageStore, stage_key
from repro.store.keys import _jsonable
from repro.timeline.events import Timeline, TimelineSpec, build_timeline
from repro.topology.generator import Internet, InternetConfig, generate_internet

#: Figure-1 thresholds and concentration report points.
FIGURE1_KS = (2, 3, 4)
CONCENTRATION_SHARES = (0.25, 0.5)
CONCENTRATION_HG_COUNTS = (2, 4)


@dataclass(frozen=True)
class TimelineConfig:
    """Everything needed to reproduce one longitudinal timeline run.

    Mirrors :class:`repro.core.pipeline.StudyConfig` where the stages
    overlap; ``spec`` replaces the two-epoch deployment history.
    ``parallel``/``faults``/``resilience`` are execution-only — they
    shape where epoch cells run and which are lost, never the bytes a
    completed cell produces, so they stay out of every stage key.
    """

    internet: InternetConfig = field(default_factory=InternetConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    scan: ScanConfig = field(default_factory=ScanConfig)
    campaign: LatencyCampaignConfig = field(default_factory=LatencyCampaignConfig)
    spec: TimelineSpec = field(default_factory=TimelineSpec)
    n_vantage_points: int = 163
    xis: tuple[float, ...] = (0.1, 0.9)
    population_noise_sigma: float = 0.0
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    faults: FaultPlan | None = None
    resilience: ResilienceConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.n_vantage_points >= 2, "need at least two vantage points")
        require(bool(self.xis), "need at least one xi value")
        for xi in self.xis:
            require(0.0 < xi < 1.0, f"xi must be in (0, 1), got {xi}")

    @property
    def effective_min_vps(self) -> int:
        """Coverage threshold scaled to the VP count (pipeline's 61 % rule)."""
        return min(self.campaign.min_vps_per_isp, math.ceil(0.61 * self.n_vantage_points))


def timeline_fingerprint(config: TimelineConfig) -> str:
    """The artifact-relevant fingerprint of a timeline config.

    Participates in every stage key; excludes ``parallel``, ``faults``
    and ``resilience`` (execution-only, see :class:`TimelineConfig`).
    """
    view = {
        "internet": _jsonable(config.internet),
        "placement": _jsonable(config.placement),
        "scan": _jsonable(config.scan),
        "campaign": _jsonable(config.campaign),
        "spec": config.spec.to_json(),
        "n_vantage_points": config.n_vantage_points,
        "xis": list(config.xis),
        "population_noise_sigma": config.population_noise_sigma,
        "seed": config.seed,
    }
    material = json.dumps(view, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


def _stage_seed(material: str) -> int:
    """A 64-bit RNG seed derived from stage-key material (never a stream)."""
    return int.from_bytes(hashlib.blake2b(material.encode(), digest_size=8).digest(), "big")


@dataclass
class TimelineSubstrate:
    """The per-process shared inputs every epoch cell reads.

    Built once per (process, fingerprint) — see :func:`build_substrate`;
    epoch cells treat it as immutable.
    """

    config: TimelineConfig
    fingerprint: str
    internet: Internet
    timeline: Timeline
    vantage_points: list[VantagePoint]
    population: PopulationDataset
    rules: list[FingerprintRule]


_SUBSTRATE_MEMO: dict[str, TimelineSubstrate] = {}
_SUBSTRATE_MEMO_LIMIT = 4


def build_substrate(config: TimelineConfig, telemetry: Telemetry | None = None) -> TimelineSubstrate:
    """Build (or reuse) the shared substrate for ``config``.

    Topology, final placement, event stream, vantage points, population
    and fingerprint rules are epoch-independent; memoized per process so
    a worker handling many epoch cells pays for them once.
    """
    fingerprint = timeline_fingerprint(config)
    cached = _SUBSTRATE_MEMO.get(fingerprint)
    if cached is not None:
        return cached
    obs = ensure_telemetry(telemetry)
    with obs.span("timeline.substrate"):
        internet = generate_internet(config.internet)
        timeline = build_timeline(internet, config.spec, DEFAULT_HYPERGIANT_PROFILES, config.placement)
        root = make_rng(config.seed)
        vantage_points = build_vantage_points(
            internet.world, config.n_vantage_points, seed=spawn_rng(root, "vps")
        )
        population = build_population_dataset(
            internet, config.population_noise_sigma, seed=spawn_rng(root, "population")
        )
        rules = fingerprint_rules(config.spec.edition)
    substrate = TimelineSubstrate(
        config=config,
        fingerprint=fingerprint,
        internet=internet,
        timeline=timeline,
        vantage_points=vantage_points,
        population=population,
        rules=rules,
    )
    if len(_SUBSTRATE_MEMO) >= _SUBSTRATE_MEMO_LIMIT:
        _SUBSTRATE_MEMO.clear()
    _SUBSTRATE_MEMO[fingerprint] = substrate
    return substrate


# -- detect stage ---------------------------------------------------------------


def _responds(seed: int, ip: int, nonresponse_rate: float) -> bool:
    """Per-server scan-response coin: a pure hash of ``(seed, ip)``.

    Independent of the sibling set by construction, so capacity events
    never re-roll existing servers' fates.
    """
    if nonresponse_rate <= 0.0:
        return True
    material = f"{seed}:timeline.response:{ip}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64 >= nonresponse_rate


def detect_stage_key(config: TimelineConfig, hypergiant: str, isp_asn: int, ips: list[int]) -> str:
    """Content key of one deployment's scan+detect outcome."""
    return stage_key(
        "detect",
        {
            "edition": config.spec.edition,
            "hypergiant": hypergiant,
            "ips": list(ips),
            "isp_asn": isp_asn,
            "nonresponse_rate": config.scan.offnet_nonresponse_rate,
            "seed": config.seed,
        },
    )


def run_detect_stage(
    substrate: TimelineSubstrate,
    hypergiant: str,
    isp_asn: int,
    servers: list,
    store: StageStore | None,
) -> list[tuple[int, str]]:
    """Scan one deployment's servers and match certificates against rules.

    Returns ``[(ip, detected_hypergiant), ...]`` in IP order.  Each
    server's certificate RNG is seeded from ``(config seed, ip)``, so
    the per-server draw is identical no matter which quarter, sibling
    set, or worker evaluates it.  ``store=None`` disables caching (the
    differential harness's full-rerun leg).
    """
    config = substrate.config
    ips = [server.ip for server in servers]
    key = detect_stage_key(config, hypergiant, isp_asn, ips)
    cached = store.get("detect", key) if store is not None else None
    if cached is not None:
        return [(int(ip), str(name)) for ip, name in cached["detections"]]
    detections: list[tuple[int, str]] = []
    for server in servers:
        if not _responds(config.seed, server.ip, config.scan.offnet_nonresponse_rate):
            continue
        cert_rng = make_rng(_stage_seed(f"{config.seed}:timeline.cert:{server.ip}"))
        certificate = certificate_for_server(server, config.spec.edition, cert_rng)
        for rule in substrate.rules:
            if rule.matches(certificate):
                detections.append((server.ip, rule.hypergiant))
                break
    if store is not None:
        store.put("detect", key, {"detections": [[ip, name] for ip, name in detections]})
    return detections


# -- measure stage --------------------------------------------------------------


def measure_stage_key(substrate: TimelineSubstrate, isp_asn: int, ips: list[int]) -> str:
    """Content key of one ISP's latency campaign."""
    return stage_key(
        "measure",
        {
            "campaign": _jsonable(substrate.config.campaign),
            "ips": list(ips),
            "isp_asn": isp_asn,
            "substrate": substrate.fingerprint,
        },
    )


def _matrix_to_payload(matrix: LatencyMatrix) -> dict:
    """JSON form of an RTT matrix (NaN → null)."""
    rtt = [[None if math.isnan(v) else float(v) for v in row] for row in matrix.rtt_ms]
    return {"ips": [int(ip) for ip in matrix.ips], "rtt_ms": rtt}


def _matrix_from_payload(payload: dict, vps: list[VantagePoint]) -> LatencyMatrix:
    """Rebuild an RTT matrix from its cached JSON form."""
    rtt = np.array(
        [[np.nan if v is None else v for v in row] for row in payload["rtt_ms"]], dtype=float
    )
    if rtt.size == 0:
        rtt = rtt.reshape(len(vps), 0)
    return LatencyMatrix(vps=vps, ips=[int(ip) for ip in payload["ips"]], rtt_ms=rtt)


def run_measure_stage(
    substrate: TimelineSubstrate,
    isp_asn: int,
    ips: list[int],
    store: StageStore | None,
    telemetry: Telemetry | None = None,
) -> LatencyMatrix:
    """Measure one ISP's detected offnets from every vantage point.

    The campaign seed is derived from the stage key, so the matrix is a
    pure function of (substrate, ISP, IP set) — re-measuring the same
    set in a later quarter reproduces it bit-for-bit, which is why the
    cache hit is sound.  Ground truth comes from the *final* placement
    (every quarter's servers are a subset of it).
    """
    key = measure_stage_key(substrate, isp_asn, ips)
    cached = store.get("measure", key) if store is not None else None
    if cached is not None:
        return _matrix_from_payload(cached, substrate.vantage_points)
    matrix = measure_offnets(
        substrate.internet,
        substrate.timeline.final_state,
        list(ips),
        substrate.vantage_points,
        substrate.config.campaign,
        seed=_stage_seed(f"measure:{key}"),
        telemetry=telemetry,
        parallel=ParallelConfig(),
    )
    if store is not None:
        store.put("measure", key, _matrix_to_payload(matrix))
    return matrix


# -- cluster stage --------------------------------------------------------------


def cluster_stage_key(substrate: TimelineSubstrate, measure_key: str) -> str:
    """Content key of one ISP's filter+clustering outcome."""
    config = substrate.config
    return stage_key(
        "cluster",
        {
            "measure": measure_key,
            "min_vps": config.effective_min_vps,
            "xis": list(config.xis),
        },
    )


def run_cluster_stage(
    substrate: TimelineSubstrate,
    isp_asn: int,
    ips: list[int],
    store: StageStore | None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Filter and cluster one ISP's offnets; returns the stage payload.

    Payload: ``{"analyzable": bool, "ips": kept IPs, "labels":
    {str(xi): [label, ...]}}``.  Checked before the measure stage so a
    fully-unchanged ISP costs a single cache read; on a miss the measure
    stage is consulted (and possibly computed) first.
    """
    config = substrate.config
    measure_key = measure_stage_key(substrate, isp_asn, ips)
    key = cluster_stage_key(substrate, measure_key)
    cached = store.get("cluster", key) if store is not None else None
    if cached is not None:
        return cached
    matrix = run_measure_stage(substrate, isp_asn, ips, store, telemetry=telemetry)
    filter_config = replace(config.campaign, min_vps_per_isp=config.effective_min_vps)
    filtered = apply_quality_filters(
        matrix, {ip: isp_asn for ip in matrix.ips}, filter_config, telemetry=telemetry
    )
    kept = filtered.ips_by_isp.get(isp_asn, [])
    payload: dict = {"analyzable": bool(kept), "ips": [int(ip) for ip in kept], "labels": {}}
    if kept:
        memo = ClusteringMemo()
        columns = matrix.submatrix(kept)
        for xi in config.xis:
            clustering = cluster_isp_offnets(
                columns,
                list(kept),
                ClusteringConfig(xi=xi),
                telemetry=telemetry,
                memo=memo,
                memo_key=isp_asn,
            )
            payload["labels"][str(xi)] = [int(label) for label in clustering.labels]
    if store is not None:
        store.put("cluster", key, payload)
    return payload


# -- epoch aggregation ----------------------------------------------------------


def epoch_stage_key(config: TimelineConfig, quarter: str) -> str:
    """Content key of one quarter's aggregated series row (resume token)."""
    return stage_key("epoch", {"quarter": quarter, "substrate": timeline_fingerprint(config)})


def compute_epoch(
    substrate: TimelineSubstrate,
    quarter: str,
    store: StageStore | None,
    telemetry: Telemetry | None = None,
) -> dict:
    """Aggregate one quarter's series row through the cached stages.

    All dict keys in the returned row are strings (``json`` round-trip
    byte-stability); numeric values are plain ints/floats.
    """
    config = substrate.config
    obs = ensure_telemetry(telemetry)
    timeline = substrate.timeline
    state = timeline.state_at(quarter)

    with obs.span("timeline.detect", epoch=quarter, n_items=len(state.deployments)):
        detections: list[DetectedOffnet] = []
        for deployment in state.deployments:
            found = run_detect_stage(
                substrate, deployment.hypergiant, deployment.isp.asn, deployment.servers, store
            )
            detections.extend(
                DetectedOffnet(ip=ip, hypergiant=name, isp_asn=deployment.isp.asn)
                for ip, name in found
            )
        detections.sort(key=lambda d: d.ip)
        inventory = OffnetInventory(epoch=quarter, edition=config.spec.edition, detections=detections)

    table1 = {
        profile.name: inventory.isp_count(profile.name)
        for profile in sorted(DEFAULT_HYPERGIANT_PROFILES, key=lambda p: p.name)
    }
    cohosting = {str(k): v for k, v in cohosting_counts(inventory).items()}
    panels = figure1_panels(inventory, substrate.population, FIGURE1_KS)
    figure1 = {
        str(k): {
            "world_user_fraction": panel.world_user_fraction(substrate.population),
            "majority_countries": len(panel.countries_above(0.5)),
            "full_countries": panel.countries_above(0.9),
        }
        for k, panel in panels.items()
    }

    ips_by_isp: dict[int, list[int]] = {}
    for detection in detections:
        ips_by_isp.setdefault(detection.isp_asn, []).append(detection.ip)

    with obs.span("timeline.colocate", epoch=quarter, n_items=len(ips_by_isp)):
        clusterings: dict[float, dict[int, SiteClustering]] = {xi: {} for xi in config.xis}
        analyzable_asns: list[int] = []
        for asn in sorted(ips_by_isp):
            outcome = run_cluster_stage(
                substrate, asn, sorted(ips_by_isp[asn]), store, telemetry=telemetry
            )
            if not outcome["analyzable"]:
                continue
            analyzable_asns.append(asn)
            kept = [int(ip) for ip in outcome["ips"]]
            for xi in config.xis:
                labels = np.array([int(v) for v in outcome["labels"][str(xi)]], dtype=int)
                clusterings[xi][asn] = SiteClustering(
                    ips=kept, labels=labels, config=ClusteringConfig(xi=xi)
                )

    hypergiant_of_ip = {d.ip: d.hypergiant for d in detections}
    concentration: dict[str, dict[str, float]] = {}
    for xi in config.xis:
        result = single_facility_concentration(
            xi, clusterings[xi], hypergiant_of_ip, substrate.population
        )
        concentration[str(xi)] = {
            **{
                f"user_share_{int(100 * s)}": result.user_fraction_with_share_at_least(s)
                for s in CONCENTRATION_SHARES
            },
            **{
                f"user_hgs_{n}": result.user_fraction_with_hypergiants_at_least(n)
                for n in CONCENTRATION_HG_COUNTS
            },
        }
    coverage = coverage_statistics(inventory, analyzable_asns, substrate.population)

    obs.count("timeline.epochs_computed")
    return {
        "epoch": quarter,
        "events": len(timeline.events_at(quarter)),
        "n_servers": len(state.servers),
        "n_detections": len(detections),
        "table1": table1,
        "cohosting": cohosting,
        "figure1": figure1,
        "analyzable_isps": len(analyzable_asns),
        "concentration": concentration,
        "coverage": {name: float(value) for name, value in sorted(coverage.items())},
    }
