"""Longitudinal timeline: event-driven deployments + incremental recomputation.

The paper's §3.1 reads two static snapshots ("2021", "2023") and
extrapolates: "multi-hypergiant hosting will continue to increase over
time".  This package turns that extrapolation into a first-class
longitudinal engine:

- :mod:`repro.timeline.events` — a deterministic, seeded stream of
  quarterly deployment/eviction/capacity events
  (:class:`TimelineSpec` -> :class:`DeploymentEvent` ->
  :meth:`Timeline.state_at`), generalising the static per-epoch ratio
  table in :mod:`repro.deployment.growth`.
- :mod:`repro.timeline.engine` — per-stage content-addressed caching on
  top of :class:`repro.store.StageStore`: epoch N+1 reuses every
  detect/measure/cluster artifact whose inputs did not change, and the
  differential tests prove incremental == full byte-identically.
- :mod:`repro.timeline.campaign` — the resume-safe campaign that emits
  the Table-1 / Figure-1 / concentration series over epochs, one cell
  per quarter through :mod:`repro.parallel`, checkpoint-before-report.
"""

from repro.timeline.campaign import (
    REPORT_FORMAT,
    EpochResult,
    TimelineReport,
    TimelineStatus,
    run_timeline,
    timeline_status,
)
from repro.timeline.engine import (
    TimelineConfig,
    TimelineSubstrate,
    build_substrate,
    cluster_stage_key,
    compute_epoch,
    detect_stage_key,
    epoch_stage_key,
    measure_stage_key,
    run_cluster_stage,
    run_detect_stage,
    run_measure_stage,
    timeline_fingerprint,
)
from repro.timeline.events import (
    DEFAULT_TIMELINE_ANCHORS,
    POLICIES,
    DeploymentEvent,
    Timeline,
    TimelineSpec,
    build_timeline,
    quarter_label,
    quarter_range,
)

__all__ = [
    "DEFAULT_TIMELINE_ANCHORS",
    "POLICIES",
    "REPORT_FORMAT",
    "DeploymentEvent",
    "EpochResult",
    "Timeline",
    "TimelineConfig",
    "TimelineReport",
    "TimelineSpec",
    "TimelineStatus",
    "TimelineSubstrate",
    "build_substrate",
    "build_timeline",
    "cluster_stage_key",
    "compute_epoch",
    "detect_stage_key",
    "epoch_stage_key",
    "measure_stage_key",
    "quarter_label",
    "quarter_range",
    "run_cluster_stage",
    "run_detect_stage",
    "run_measure_stage",
    "run_timeline",
    "timeline_fingerprint",
    "timeline_status",
]
