"""Resume-safe timeline campaigns: one epoch cell per quarter.

:func:`run_timeline` dispatches one cell per quarter through
:mod:`repro.parallel` (mirroring :mod:`repro.sweep.campaign`): each cell
aggregates its quarter via the incremental engine and is checkpointed
into the :class:`~repro.store.StageStore` under its ``epoch`` key
*before* its result is reported, so an interrupt loses at most the
cells in flight.  Re-running the same campaign skips every stored epoch
— the content address *is* the resume token; there is no campaign state
file to corrupt.

The :class:`TimelineReport` is a pure function of (config, quarters):
cache provenance (hits/misses) is surfaced separately and excluded from
:meth:`TimelineReport.to_json`, so an interrupted-then-resumed campaign
serialises **byte-identically** to an uninterrupted one
(``tests/test_timeline_resume.py`` proves this, serial and process).

Honest coverage under faults: a quarter whose shard exhausts its retry
budget is reported as a ``status="lost"`` row — never silently dropped —
and each completed row carries its own ``coverage`` fractions (users in
hosting/analyzable ISPs), so degraded epochs are visible in the series.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable

from repro._util import atomic_write_text, format_table, require
from repro.obs import Telemetry, ensure_telemetry
from repro.parallel import Shard, ShardPlan, run_sharded
from repro.resilience import ShardLoss
from repro.store import StageStore
from repro.timeline.engine import (
    TimelineConfig,
    build_substrate,
    compute_epoch,
    epoch_stage_key,
    timeline_fingerprint,
)

#: Format tag stamped into exported timeline reports.
REPORT_FORMAT = "repro-timeline-v1"


@dataclass(frozen=True)
class EpochResult:
    """One quarter's completed (or lost) series row."""

    index: int
    epoch: str
    #: The aggregated series row (empty when the epoch was lost).
    row: dict[str, Any]
    #: Whether the row came from the store (provenance, not artifact).
    from_store: bool = False
    #: ``"ok"``, or ``"lost"`` when the epoch's shard was quarantined.
    status: str = "ok"


@dataclass
class TimelineReport:
    """The longitudinal series: one row per quarter.

    Everything :meth:`render` and :meth:`to_json` emit is a
    deterministic function of (config, quarters); cache provenance lives
    only in :attr:`cache_hits` / :attr:`cache_misses` and is excluded,
    so resumed and uninterrupted campaigns produce identical bytes.
    """

    spec_json: dict[str, Any]
    fingerprint: str
    epochs: list[EpochResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_lost(self) -> int:
        """Quarters whose shards were quarantined (honest-coverage rows)."""
        return sum(1 for epoch in self.epochs if epoch.status != "ok")

    def series(self, *path: str) -> list[Any]:
        """One value per *completed* epoch, drilled by nested keys.

        ``report.series("table1", "Google")`` is the Table-1 Google
        column over time; ``report.series("cohosting", "2")`` the
        >= 2-hypergiant count.
        """
        values = []
        for epoch in self.epochs:
            if epoch.status != "ok":
                continue
            value: Any = epoch.row
            for key in path:
                value = value[key]
            values.append(value)
        return values

    def render(self) -> str:
        """The headline series as a plain-text table."""
        headers = ["epoch", "servers", "offnets", "Google", "Netflix", "Meta", "Akamai", ">=2 HGs", "analyzable", "hosting cov"]
        rows = []
        for epoch in self.epochs:
            if epoch.status != "ok":
                rows.append([epoch.epoch, "LOST", "-", "-", "-", "-", "-", "-", "-", "-"])
                continue
            row = epoch.row
            rows.append(
                [
                    epoch.epoch,
                    row["n_servers"],
                    row["n_detections"],
                    row["table1"]["Google"],
                    row["table1"]["Netflix"],
                    row["table1"]["Meta"],
                    row["table1"]["Akamai"],
                    row["cohosting"]["2"],
                    row["analyzable_isps"],
                    f"{100 * row['coverage']['hosting']:.0f}%",
                ]
            )
        return format_table(headers, rows)

    def to_json(self) -> dict[str, Any]:
        """Canonical report dict (no timings, no cache provenance)."""
        return {
            "format": REPORT_FORMAT,
            "fingerprint": self.fingerprint,
            "spec": self.spec_json,
            "n_epochs": len(self.epochs),
            "n_lost": self.n_lost,
            "epochs": [
                {"epoch": epoch.epoch, "status": epoch.status, "row": epoch.row}
                for epoch in self.epochs
            ],
        }

    def write(self, path: str | Path) -> Path:
        """Write the canonical report JSON to ``path`` (atomically) and return it."""
        return atomic_write_text(path, json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n")


def _run_epochs_shard(
    config: TimelineConfig,
    store_root: str | None,
    epoch_hook: "Callable[[EpochResult], None] | None",
    shard: Shard,
    telemetry: Telemetry | None,
) -> list[EpochResult]:
    """Run one shard of epoch cells; store-first, compute on miss.

    Each freshly-computed epoch row is checkpointed under its ``epoch``
    key before it is returned — the whole resume protocol.
    ``epoch_hook`` fires after the checkpoint (the abort-mid-campaign
    tests hook here; with a process backend it must be picklable).
    """
    obs = ensure_telemetry(telemetry)
    store = StageStore(store_root) if store_root is not None else None
    substrate = build_substrate(config, telemetry=telemetry)
    results: list[EpochResult] = []
    for index, quarter in shard.items:
        key = epoch_stage_key(config, quarter)
        with obs.span("timeline.epoch", epoch=quarter) as span:
            row = store.get("epoch", key) if store is not None else None
            from_store = row is not None
            if row is None:
                row = compute_epoch(substrate, quarter, store, telemetry=telemetry)
                if store is not None:
                    store.put("epoch", key, row)
            span.set(from_store=from_store)
        result = EpochResult(index=index, epoch=quarter, row=row, from_store=from_store)
        results.append(result)
        if epoch_hook is not None:
            epoch_hook(result)
    return results


def run_timeline(
    config: TimelineConfig,
    store: StageStore | None = None,
    telemetry: Telemetry | None = None,
    max_epochs: int | None = None,
    epoch_hook: "Callable[[EpochResult], None] | None" = None,
) -> TimelineReport:
    """Run (or resume) the longitudinal campaign; one report row per quarter.

    ``store`` makes the campaign durable *and* incremental: epoch rows
    already present are loaded instead of recomputed, and the per-stage
    caches let a fresh epoch reuse every unchanged detect/measure/
    cluster artifact from its predecessors.  ``max_epochs`` truncates to
    the first N quarters (a deterministic partial campaign — the resume
    tests' tool).  ``config.parallel`` dispatches one quarter per shard;
    ``config.faults`` wires the ``timeline.shard`` injection site, and
    with ``config.resilience`` a quarter that exhausts its retries
    degrades to a ``status="lost"`` row instead of sinking the series.
    """
    quarters = config.spec.quarters
    if max_epochs is not None:
        require(max_epochs >= 1, "max_epochs must be >= 1")
        quarters = quarters[:max_epochs]
    obs = ensure_telemetry(telemetry)
    store_root = str(store.root) if store is not None else None

    plan = ShardPlan.of(list(enumerate(quarters)), chunk_size=1)
    # One quarter per shard, so executor progress events double as
    # per-epoch campaign progress on the stream.
    obs.emit("timeline_start", n_epochs=len(quarters), start=quarters[0], end=quarters[-1])
    with obs.span("timeline", n_epochs=len(quarters), stored=store is not None):
        shard_results = run_sharded(
            partial(_run_epochs_shard, config, store_root, epoch_hook),
            plan,
            config.parallel,
            telemetry=telemetry,
            label="timeline",
            faults=config.faults,
            resilience=config.resilience,
        )
    results: list[EpochResult] = []
    for shard, shard_result in zip(plan.shards(), shard_results):
        if isinstance(shard_result, ShardLoss):
            # One quarter per shard: a quarantined shard is a lost epoch,
            # surfaced as an honest hole in the series.
            for index, quarter in shard.items:
                obs.count("timeline.epochs_lost")
                results.append(
                    EpochResult(index=index, epoch=quarter, row={}, status="lost")
                )
            continue
        results.extend(shard_result)
    results.sort(key=lambda r: r.index)

    report = TimelineReport(
        spec_json=config.spec.to_json(),
        fingerprint=timeline_fingerprint(config),
        epochs=results,
        cache_hits=sum(1 for r in results if r.from_store),
        cache_misses=sum(1 for r in results if r.status == "ok" and not r.from_store),
    )
    obs.count("timeline.epochs", len(results))
    obs.count("timeline.store_hits", report.cache_hits)
    obs.count("timeline.store_misses", report.cache_misses)
    obs.emit(
        "timeline_end",
        n_epochs=len(results),
        n_lost=report.n_lost,
        store_hits=report.cache_hits,
        store_misses=report.cache_misses,
    )
    obs.log(
        "timeline campaign complete",
        epochs=len(results),
        store_hits=report.cache_hits,
        store_misses=report.cache_misses,
    )
    return report


@dataclass(frozen=True)
class TimelineStatus:
    """Which quarters are already durable in a stage store."""

    n_epochs: int
    done: tuple[str, ...]
    pending: tuple[str, ...]

    @property
    def n_done(self) -> int:
        """Quarters already checkpointed."""
        return len(self.done)

    @property
    def n_pending(self) -> int:
        """Quarters a resume would still run."""
        return len(self.pending)

    def render(self) -> str:
        """One-line summary plus the pending quarters."""
        lines = [f"{self.n_done}/{self.n_epochs} epochs stored, {self.n_pending} pending"]
        for epoch in self.pending:
            lines.append(f"  pending: {epoch}")
        return "\n".join(lines)


def timeline_status(config: TimelineConfig, store: StageStore) -> TimelineStatus:
    """Check every quarter against the store (no counter effects)."""
    done: list[str] = []
    pending: list[str] = []
    for quarter in config.spec.quarters:
        key = epoch_stage_key(config, quarter)
        (done if store.contains(key) else pending).append(quarter)
    return TimelineStatus(
        n_epochs=len(done) + len(pending), done=tuple(done), pending=tuple(pending)
    )
