"""The event-driven deployment timeline.

Generalizes :func:`repro.deployment.growth.build_epoch_series`'s static
ratio table into a deterministic, seeded stream of quarterly events:

    :class:`TimelineSpec` → ``[DeploymentEvent]`` → :meth:`Timeline.state_at`

The final footprint is placed once (:func:`repro.deployment.place_offnets`
at ``spec.end``); every quarter's state is a *subset* of it, selected by
a weighted adoption order (the same early-adopters-are-large skew the
two-epoch history uses).  Under the default ``monotone`` policy each
quarter's footprint nests inside the next — the paper's Table-1 growth
story extended to 32 quarters.  The ``churn`` policy adds evictions:
per-quarter, per-deployment coins decided by hashing (never by a live
RNG stream, mirroring :mod:`repro.faults`), so whether ISP X evicts
hypergiant Y in 2024Q2 is a pure function of the spec seed — which is
what lets the incremental engine fingerprint each epoch without
replaying its predecessors.

Determinism invariants (the incremental engine depends on all three):

* the final placement and adoption order consume RNG streams spawned
  from ``spec.seed`` only — no other stage shares them;
* eviction/capacity decisions are pure hashes of ``(seed, hypergiant,
  asn, quarter)``, independent of iteration order;
* a deployment active with capacity ``n`` always exposes the *same*
  ``n`` servers (IP-sorted prefix of its final server list), so a
  deployment unchanged between quarters has a byte-identical offnet set.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro._util import make_rng, require, require_fraction, spawn_rng
from repro.deployment.growth import _early_adopter_weights, parse_epoch_label
from repro.deployment.hypergiants import DEFAULT_HYPERGIANT_PROFILES, HypergiantProfile
from repro.deployment.placement import Deployment, DeploymentState, PlacementConfig, place_offnets
from repro.topology.generator import Internet

#: Recognised timeline policies.
POLICIES = ("monotone", "churn")

#: Quarterly footprint anchors (fraction of the final placement), shaped
#: after the SIGCOMM'21 longitudinal curves like
#: :data:`repro.deployment.growth.DEFAULT_EPOCH_TRAJECTORIES`: Akamai
#: built out early and flat, the others still ramping through the 2020s.
DEFAULT_TIMELINE_ANCHORS: dict[str, dict[str, float]] = {
    "Google": {"2019Q1": 0.60, "2021Q2": 0.78, "2023Q2": 0.90, "2026Q4": 1.0},
    "Netflix": {"2019Q1": 0.42, "2021Q2": 0.66, "2023Q2": 0.84, "2026Q4": 1.0},
    "Meta": {"2019Q1": 0.46, "2021Q2": 0.78, "2023Q2": 0.89, "2026Q4": 1.0},
    "Akamai": {"2019Q1": 0.96, "2021Q2": 0.98, "2023Q2": 1.0, "2026Q4": 1.0},
}


def _quarter_index(label: str) -> int:
    """Continuous quarter index (``"2021Q3"`` → 2021·4+2; yearly → Q1)."""
    year, quarter = parse_epoch_label(label)
    return year * 4 + (quarter - 1 if quarter else 0)


def quarter_label(index: int) -> str:
    """Inverse of :func:`_quarter_index` for quarterly labels."""
    return f"{index // 4}Q{index % 4 + 1}"


def quarter_range(start: str, end: str) -> tuple[str, ...]:
    """Every quarterly label from ``start`` through ``end`` inclusive.

    Both endpoints must be quarterly (``YYYYQn``) — a timeline is a
    quarterly stream; yearly labels would be ambiguous about which
    quarter they mean.
    """
    for label in (start, end):
        _year, quarter = parse_epoch_label(label)
        require(quarter != 0, f"timeline bounds must be quarterly ('YYYYQn'), got {label!r}")
    first, last = _quarter_index(start), _quarter_index(end)
    require(first <= last, f"timeline start {start!r} is after end {end!r}")
    return tuple(quarter_label(i) for i in range(first, last + 1))


@dataclass(frozen=True)
class TimelineSpec:
    """Everything that determines a timeline's event stream.

    The spec (plus the substrate config) is the complete fingerprint of
    the stream: two runs with equal specs produce identical events on
    any backend.  ``anchors`` maps hypergiant → {epoch label: fraction
    of the final footprint}; targets between anchors are linearly
    interpolated, outside them clamped.  ``eviction_rate`` is the
    per-quarter, per-deployment eviction probability under the
    ``churn`` policy (must be 0 for ``monotone``).
    ``capacity_ramp_quarters`` ramps a new deployment's server count
    linearly over that many quarters after deploy (0 = full capacity
    immediately, which keeps monotone quarters strictly nested).
    """

    start: str = "2019Q1"
    end: str = "2026Q4"
    policy: str = "monotone"
    eviction_rate: float = 0.0
    capacity_ramp_quarters: int = 0
    anchors: dict[str, dict[str, float]] | None = None
    edition: str = "2023"
    seed: int = 0

    def __post_init__(self) -> None:
        quarter_range(self.start, self.end)  # validates bounds
        require(self.policy in POLICIES, f"policy must be one of {POLICIES}, got {self.policy!r}")
        require_fraction(self.eviction_rate, "eviction_rate")
        require(
            self.policy == "churn" or self.eviction_rate == 0.0,
            "eviction_rate requires policy='churn' (monotone timelines never evict)",
        )
        require(self.capacity_ramp_quarters >= 0, "capacity_ramp_quarters must be >= 0")
        require(self.edition in ("2021", "2023"), "edition must be '2021' or '2023'")
        for hypergiant, ratios in (self.anchors or {}).items():
            for label, ratio in ratios.items():
                parse_epoch_label(label)  # validates the label
                require(0.0 <= ratio <= 1.0, f"anchor {hypergiant}/{label} must be in [0, 1]")

    @property
    def quarters(self) -> tuple[str, ...]:
        """The quarterly epoch labels this spec spans."""
        return quarter_range(self.start, self.end)

    def effective_anchors(self) -> dict[str, dict[str, float]]:
        """``anchors`` with the default table filled in."""
        return self.anchors if self.anchors is not None else DEFAULT_TIMELINE_ANCHORS

    def to_json(self) -> dict:
        """JSON-serialisable form (participates in stage keys)."""
        return {
            "start": self.start,
            "end": self.end,
            "policy": self.policy,
            "eviction_rate": self.eviction_rate,
            "capacity_ramp_quarters": self.capacity_ramp_quarters,
            "anchors": self.effective_anchors(),
            "edition": self.edition,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class DeploymentEvent:
    """One change to one hypergiant's presence in one ISP.

    ``kind`` is ``deploy`` (enter with ``n_servers``), ``capacity``
    (server count changed to ``n_servers``), or ``evict`` (leave;
    ``n_servers`` is 0).
    """

    quarter: str
    kind: str
    hypergiant: str
    isp_asn: int
    n_servers: int

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        return {
            "quarter": self.quarter,
            "kind": self.kind,
            "hypergiant": self.hypergiant,
            "isp_asn": self.isp_asn,
            "n_servers": self.n_servers,
        }


def _evict_coin(seed: int, hypergiant: str, asn: int, quarter: str, rate: float) -> bool:
    """The pure eviction coin (same idiom as :func:`repro.faults.plan._fires`)."""
    if rate <= 0.0:
        return False
    material = f"{seed}:evict:{hypergiant}:{asn}:{quarter}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64 < rate


def _target_ratio(anchors: dict[str, float], quarter: str) -> float:
    """Linear interpolation of the anchor table at ``quarter`` (clamped)."""
    if not anchors:
        return 1.0
    points = sorted((_quarter_index(label), ratio) for label, ratio in anchors.items())
    q = _quarter_index(quarter)
    if q <= points[0][0]:
        return points[0][1]
    if q >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= q <= x1:
            if x1 == x0:
                return y1
            return y0 + (y1 - y0) * (q - x0) / (x1 - x0)
    return points[-1][1]  # unreachable


def _capacity_at(full: int, age: int, ramp: int) -> int:
    """Server count for a deployment ``age`` quarters after deploy."""
    if ramp <= 0:
        return full
    fraction = min(1.0, (age + 1) / (ramp + 1))
    return max(1, math.ceil(fraction * full))


@dataclass
class Timeline:
    """A materialized timeline: the final placement plus per-quarter state.

    ``final_state`` is the full placement at ``spec.end``; every
    quarter's :meth:`state_at` exposes a subset of its servers, so
    ground truth (facilities, racks, IPs) is shared across epochs —
    the property that makes cross-epoch stage reuse semantically valid.
    """

    spec: TimelineSpec
    final_state: DeploymentState
    events: list[DeploymentEvent]
    #: quarter → {(hypergiant, asn): active server count}
    active: dict[str, dict[tuple[str, int], int]] = field(repr=False)

    @property
    def quarters(self) -> tuple[str, ...]:
        """The quarterly epoch labels, oldest first."""
        return self.spec.quarters

    def events_at(self, quarter: str) -> list[DeploymentEvent]:
        """The events that fired in ``quarter``."""
        return [event for event in self.events if event.quarter == quarter]

    def active_counts(self, quarter: str) -> dict[tuple[str, int], int]:
        """``{(hypergiant, asn): server count}`` active in ``quarter``."""
        return dict(self.active[quarter])

    def state_at(self, quarter: str) -> DeploymentState:
        """The :class:`DeploymentState` snapshot for ``quarter``.

        Each active deployment exposes the IP-sorted prefix of its final
        server list, so capacity growth only ever *adds* servers and an
        unchanged deployment has a byte-identical offnet set.
        """
        counts = self.active[quarter]
        deployments: list[Deployment] = []
        for deployment in self.final_state.deployments:
            n = counts.get((deployment.hypergiant, deployment.isp.asn), 0)
            if n <= 0:
                continue
            servers = sorted(deployment.servers, key=lambda s: s.ip)[:n]
            deployments.append(
                Deployment(hypergiant=deployment.hypergiant, isp=deployment.isp, servers=servers)
            )
        return DeploymentState(epoch=quarter, deployments=deployments)


def build_timeline(
    internet: Internet,
    spec: TimelineSpec | None = None,
    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES,
    config: PlacementConfig | None = None,
) -> Timeline:
    """Generate the deterministic event stream for ``spec`` over ``internet``.

    Places the final footprint, draws one weighted adoption permutation
    per hypergiant (large ISPs adopt early), then walks the quarters:
    each quarter deploys enough pending ISPs to hit the interpolated
    anchor target, evicts per the churn coins, and ramps capacities.
    Everything after the two seeded draws is pure bookkeeping, so the
    stream is reproducible on any backend from ``spec`` alone.
    """
    spec = spec or TimelineSpec()
    root = make_rng(spec.seed)
    final_state = place_offnets(
        internet, profiles, config, seed=spawn_rng(root, "placement"), epoch=spec.end
    )
    rng_adoption = spawn_rng(root, "adoption")
    anchors = spec.effective_anchors()
    quarters = spec.quarters

    # One weighted adoption permutation per hypergiant, drawn up front.
    adoption_order: dict[str, list[Deployment]] = {}
    for profile in sorted(profiles, key=lambda p: p.name):
        pool = [d for d in final_state.deployments if d.hypergiant == profile.name]
        if not pool:
            adoption_order[profile.name] = []
            continue
        weights = _early_adopter_weights(pool)
        probabilities = weights / weights.sum()
        indices = rng_adoption.choice(len(pool), size=len(pool), replace=False, p=probabilities)
        adoption_order[profile.name] = [pool[i] for i in indices]

    events: list[DeploymentEvent] = []
    active: dict[str, dict[tuple[str, int], int]] = {}
    # Per hypergiant: adoption-ordered pending queue and active roster
    # {(hg, asn): deploy-quarter-index} (insertion order = adoption order).
    pending: dict[str, list[Deployment]] = {name: list(order) for name, order in adoption_order.items()}
    deployed_at: dict[str, dict[tuple[str, int], int]] = {p.name: {} for p in profiles}
    full_size = {
        (d.hypergiant, d.isp.asn): len(d.servers) for d in final_state.deployments
    }

    for t, quarter in enumerate(quarters):
        counts: dict[tuple[str, int], int] = {}
        for profile in sorted(profiles, key=lambda p: p.name):
            name = profile.name
            roster = deployed_at[name]
            # Evictions first (churn policy only): evicted deployments
            # rejoin the back of the pending queue and may redeploy later.
            if spec.policy == "churn" and spec.eviction_rate > 0.0:
                for key in [k for k in roster if _evict_coin(spec.seed, name, k[1], quarter, spec.eviction_rate)]:
                    del roster[key]
                    events.append(
                        DeploymentEvent(
                            quarter=quarter, kind="evict", hypergiant=name, isp_asn=key[1], n_servers=0
                        )
                    )
                    evicted = next(
                        d for d in adoption_order[name] if (d.hypergiant, d.isp.asn) == key
                    )
                    pending[name].append(evicted)
            # Deploy from the pending queue up to the anchor target.
            target = int(round(_target_ratio(anchors.get(name, {}), quarter) * len(adoption_order[name])))
            while len(roster) < target and pending[name]:
                deployment = pending[name].pop(0)
                key = (deployment.hypergiant, deployment.isp.asn)
                roster[key] = t
                events.append(
                    DeploymentEvent(
                        quarter=quarter,
                        kind="deploy",
                        hypergiant=name,
                        isp_asn=key[1],
                        n_servers=_capacity_at(full_size[key], 0, spec.capacity_ramp_quarters),
                    )
                )
            # Capacity ramp for everything on the roster.
            for key, since in sorted(roster.items(), key=lambda kv: kv[0]):
                n_now = _capacity_at(full_size[key], t - since, spec.capacity_ramp_quarters)
                counts[key] = n_now
                if t - since > 0 and spec.capacity_ramp_quarters > 0:
                    n_before = _capacity_at(full_size[key], t - since - 1, spec.capacity_ramp_quarters)
                    if n_now != n_before:
                        events.append(
                            DeploymentEvent(
                                quarter=quarter,
                                kind="capacity",
                                hypergiant=key[0],
                                isp_asn=key[1],
                                n_servers=n_now,
                            )
                        )
        active[quarter] = counts

    return Timeline(spec=spec, final_state=final_state, events=events, active=active)
