"""Deterministic fault injection for chaos-testing the pipeline.

See :mod:`repro.faults.plan` for the model: a :class:`FaultPlan` decides,
as a pure function of ``(seed, site, invocation index, attempt)``, whether
an injection point misbehaves — and :mod:`repro.resilience` for the layer
that absorbs those faults (retries, shard supervision, error budgets).
"""

from repro.faults.plan import (
    CRASH_EXIT_CODE,
    KINDS,
    KNOWN_SITES,
    FatalFaultError,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientFaultError,
    WorkerCrashError,
    load_fault_plan,
    raise_injected,
    stable_index,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "KINDS",
    "KNOWN_SITES",
    "FatalFaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TransientFaultError",
    "WorkerCrashError",
    "load_fault_plan",
    "raise_injected",
    "stable_index",
]
