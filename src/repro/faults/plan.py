"""Deterministic fault injection: :class:`FaultSpec` and :class:`FaultPlan`.

A fault plan is a *pure function* of ``(seed, site, invocation index,
attempt)``: whether a given invocation of an injection point misbehaves is
decided by hashing, never by drawing from a live RNG stream.  That gives
chaos testing the same reproducibility contract the rest of the pipeline
has — the same plan produces the same faults on the serial backend, on
process workers at any worker count, and across interpreter restarts —
and it guarantees injection can never perturb the measurement RNG
streams, so a run under *transient-only* faults exports byte-identical
artifacts once every fault has been retried away
(``tests/test_chaos.py`` proves this differentially).

Injection points are addressed by site name.  The wired sites:

* ``parallel.shard`` — every sharded fan-out (also addressable per stage
  as ``<label>.shard``, e.g. ``campaign.shard``, ``clustering.shard``,
  ``sweep.shard``); kinds ``error``/``crash``/``hang``.
* ``store.load`` — :meth:`repro.store.StudyStore.get`; kinds ``error``
  (transient or fatal load failure) and ``corrupt`` (poisons the entry's
  bytes on disk so the digest check trips).
* ``scan.record`` — :func:`repro.scan.scanner.run_scan`; kind ``drop``
  (an offnet server silently vanishes from the scan snapshot).
* ``mlab.ping`` — the latency campaign; kind ``drop`` (a target IP's
  measurements are lost, surfacing as NaN columns).
* ``rdns.lookup`` — :func:`repro.rdns.ptr.build_ptr_dataset`; kind
  ``drop`` (the PTR lookup fails, no record is synthesized).
* ``sweep.cell`` — one sweep-campaign cell; kind ``error``/``crash``.
* ``timeline.shard`` — one timeline epoch cell (the ``timeline`` fan-out
  label's alias of ``parallel.shard``); kinds ``error``/``crash``/``hang``.
* ``serve.request`` — one HTTP request into ``repro serve``, indexed by
  arrival order; kinds ``error`` (transient → 503 with Retry-After,
  fatal → 500), ``hang`` (the handler stalls for ``hang_s``), and
  ``drop`` (the connection is closed with no response).
* ``serve.journal`` — one append to the campaign write-ahead journal,
  indexed by journal sequence number; kinds ``error`` (the append
  raises), ``corrupt`` (a torn half-line lands on disk, exactly the
  damage an interrupted write would leave), and ``drop`` (the entry is
  silently never written — recovery must survive the gap).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro._util import require, require_fraction

#: Site names with wired injection points (documentation + validation).
KNOWN_SITES = (
    "parallel.shard",
    "campaign.shard",
    "clustering.shard",
    "sweep.shard",
    "store.load",
    "scan.record",
    "mlab.ping",
    "rdns.lookup",
    "sweep.cell",
    "timeline.shard",
    "serve.request",
    "serve.journal",
)

#: Recognised fault kinds.
KINDS = ("error", "crash", "hang", "drop", "corrupt")

#: Exit status an injected worker crash dies with (distinctive on purpose).
CRASH_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """Base class for all errors raised by fault injection."""


class TransientFaultError(InjectedFault):
    """An injected failure that a retry is expected to clear."""


class FatalFaultError(InjectedFault):
    """An injected failure that no amount of retrying can clear."""


class WorkerCrashError(InjectedFault):
    """A worker process died mid-shard (or the serial emulation of one)."""


@dataclass(frozen=True)
class FaultSpec:
    """One family of faults at one injection site.

    ``fail_attempts`` classifies the fault's persistence: ``None`` means
    *permanent* (fires on every attempt — retrying cannot help), while an
    integer ``k`` means *transient* (fires only on attempts ``0..k-1``,
    so the ``k``-th retry succeeds).  ``rate`` is the per-index firing
    probability; which indices fire is fixed by the plan seed.
    """

    site: str
    kind: str
    rate: float = 1.0
    #: None = permanent; k = transient, cleared after k failed attempts.
    fail_attempts: int | None = None
    #: For ``kind="error"``: raise :class:`FatalFaultError` instead of
    #: :class:`TransientFaultError`.
    fatal: bool = False
    #: For ``kind="hang"``: how long a worker sleeps before proceeding.
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        require(
            self.site in KNOWN_SITES,
            f"unknown injection site {self.site!r}; known sites: {', '.join(KNOWN_SITES)}",
        )
        require(self.kind in KINDS, f"fault kind must be one of {KINDS}, got {self.kind!r}")
        require_fraction(self.rate, "rate")
        if self.fail_attempts is not None:
            require(self.fail_attempts >= 1, "fail_attempts must be >= 1 (or None for permanent)")
            # Data-level faults are not retried, so a "transient" drop or
            # corruption would silently change artifacts while the store
            # treats the plan as artifact-inert.  Forbid the combination.
            require(
                self.kind not in ("drop", "corrupt"),
                f"{self.kind!r} faults are permanent by nature; fail_attempts must be None",
            )
        require(self.hang_s >= 0, "hang_s must be >= 0")

    @property
    def transient(self) -> bool:
        """Whether retrying is guaranteed to clear this fault."""
        return self.fail_attempts is not None

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "fail_attempts": self.fail_attempts,
            "fatal": self.fatal,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FaultSpec":
        """Parse one spec from its JSON form."""
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            rate=float(data.get("rate", 1.0)),
            fail_attempts=None if data.get("fail_attempts") is None else int(data["fail_attempts"]),
            fatal=bool(data.get("fatal", False)),
            hang_s=float(data.get("hang_s", 5.0)),
        )


def _fires(seed: int, site: str, index: int, slot: int, rate: float) -> bool:
    """The deterministic coin: hash ``(seed, site, index, slot)`` to [0, 1)."""
    if rate >= 1.0:
        return True
    material = f"{seed}:{site}:{index}:{slot}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64 < rate


def stable_index(text: str) -> int:
    """A stable small integer for string-addressed sites (store keys)."""
    return int.from_bytes(hashlib.blake2b(text.encode(), digest_size=4).digest(), "big")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; hashable, picklable, pure."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists for ergonomic construction; store a hashable tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def transient_only(self) -> bool:
        """Whether every spec is transient (artifact-inert under retries)."""
        return all(spec.transient for spec in self.specs)

    def sites(self) -> frozenset[str]:
        """Every site this plan can touch."""
        return frozenset(spec.site for spec in self.specs)

    def decide(self, site: str, index: int, attempt: int = 0) -> FaultSpec | None:
        """The fault (if any) for invocation ``index`` of ``site`` at ``attempt``.

        Pure: the same arguments always produce the same answer, in any
        process.  The first matching spec wins; a transient spec stops
        firing once ``attempt`` reaches its ``fail_attempts``.
        """
        for slot, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.fail_attempts is not None and attempt >= spec.fail_attempts:
                continue
            if _fires(self.seed, spec.site, index, slot, spec.rate):
                return spec
        return None

    def decide_any(self, sites: tuple[str, ...], index: int, attempt: int = 0) -> FaultSpec | None:
        """:meth:`decide` over several site aliases; first hit wins."""
        for site in sites:
            spec = self.decide(site, index, attempt)
            if spec is not None:
                return spec
        return None

    def fires_ever(self, site: str, index: int) -> bool:
        """Whether ``(site, index)`` is fault-afflicted on attempt 0."""
        return self.decide(site, index, attempt=0) is not None

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (the ``--faults spec.json`` format)."""
        return {"seed": self.seed, "specs": [spec.to_json() for spec in self.specs]}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FaultPlan":
        """Parse a plan from its JSON form."""
        return cls(
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_json(entry) for entry in data.get("specs", ())),
        )


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a ``--faults`` JSON spec file."""
    return FaultPlan.from_json(json.loads(Path(path).read_text()))


def raise_injected(spec: FaultSpec, site: str, index: int) -> None:
    """Raise the error an ``error``-kind spec injects."""
    message = f"injected fault at {site}[{index}]"
    if spec.fatal:
        raise FatalFaultError(message)
    raise TransientFaultError(message)
