"""The metrics registry: counters, gauges, and histograms.

Names follow the ``<stage>.<name>`` convention (``scan.hosts_probed``,
``filters.ips_dropped_unresponsive``, ``cluster.optics_reachability_ms``)
so exports group naturally by pipeline stage.  All aggregation is plain
arithmetic — recording a metric never draws from an RNG, so instrumented
code stays deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class HistogramSummary:
    """Order statistics of one histogram's observations."""

    count: int
    total: float
    minimum: float
    maximum: float
    mean: float
    p50: float
    p90: float
    p99: float

    def to_json(self) -> dict[str, float]:
        """JSON-serialisable form."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: list[float]) -> HistogramSummary:
    """Summarise raw observations (empty input gives an all-zero summary)."""
    if not values:
        return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    total = float(sum(ordered))
    return HistogramSummary(
        count=len(ordered),
        total=total,
        minimum=ordered[0],
        maximum=ordered[-1],
        mean=total / len(ordered),
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
    )


class MetricsRegistry:
    """Mutable store of counters, gauges, and histograms."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- recording --------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self._histograms.setdefault(name, []).append(float(value))

    # -- reading ----------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Counter value (0 if never incremented)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> HistogramSummary:
        """Summary of histogram ``name`` (all-zero if never observed)."""
        return summarize(self._histograms.get(name, []))

    def histogram_values(self, name: str) -> list[float]:
        """Raw observations of histogram ``name``, in recording order."""
        return list(self._histograms.get(name, ()))

    def histogram_names(self) -> list[str]:
        """Names of all histograms, sorted."""
        return sorted(self._histograms)

    # -- merging ----------------------------------------------------------------

    def merge_json(self, data: dict[str, Any]) -> None:
        """Fold a snapshot (``to_json(include_values=True)``) into this registry.

        Counters add, gauges last-write-win, histogram observations extend.
        This is how worker-process telemetry re-enters the parent registry
        (see :mod:`repro.parallel.executor`): each worker records into a
        private registry, so merging its snapshot once counts each
        observation exactly once.  Snapshots whose histograms lack raw
        values degrade the same way :meth:`from_json` does.
        """
        for name, value in data.get("counters", {}).items():
            self.count(name, value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name, value)
        for name, entry in data.get("histograms", {}).items():
            if "values" in entry:
                values = [float(v) for v in entry["values"]]
            else:
                values = [float(entry["mean"])] * int(entry["count"])
            self._histograms.setdefault(name, []).extend(values)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (same semantics as merge_json)."""
        self.merge_json(other.to_json(include_values=True))

    # -- serialisation ----------------------------------------------------------

    def to_json(self, include_values: bool = False) -> dict[str, Any]:
        """JSON-serialisable form; ``include_values`` keeps raw observations."""
        histograms: dict[str, Any] = {}
        for name in self.histogram_names():
            entry = self.histogram(name).to_json()
            if include_values:
                entry["values"] = self.histogram_values(name)
            histograms[name] = entry
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": histograms,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry exported with ``to_json(include_values=True)``.

        Histograms exported without raw values come back as their summaries'
        supports only (count preserved via the mean): exact round-trips
        require ``include_values=True`` on export.
        """
        registry = cls()
        registry.counters.update(data.get("counters", {}))
        registry.gauges.update(data.get("gauges", {}))
        for name, entry in data.get("histograms", {}).items():
            if "values" in entry:
                registry._histograms[name] = [float(v) for v in entry["values"]]
            else:
                registry._histograms[name] = [float(entry["mean"])] * int(entry["count"])
        return registry


class NullMetrics:
    """Disabled metrics: every recording call is a no-op."""

    enabled = False
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_json(self, data: dict[str, Any]) -> None:
        pass

    def merge(self, other: Any) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def histogram(self, name: str) -> HistogramSummary:
        return summarize([])

    def histogram_values(self, name: str) -> list[float]:
        return []

    def histogram_names(self) -> list[str]:
        return []

    def to_json(self, include_values: bool = False) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()

#: Library-wide registry for process-level counters (e.g. the scenario
#: cache's hit/miss accounting) that exist outside any one study run.
GLOBAL_METRICS = MetricsRegistry()


def global_metrics() -> MetricsRegistry:
    """The process-wide registry shared by library-level components."""
    return GLOBAL_METRICS
