"""Observability for the study pipeline: tracing, metrics, logging, export.

The subsystem has four pieces:

* :mod:`repro.obs.trace` — nested stage spans with wall-clock durations
  (:class:`Tracer`); disabled mode is a shared no-op span with zero clock
  calls.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and histograms named ``<stage>.<name>``.
* :mod:`repro.obs.logging` — :func:`get_logger`, the repo's single
  structured-logging entry point (text or JSON lines).
* :mod:`repro.obs.export` — JSON snapshots in the ``BENCH_*.json``
  trajectory format plus aligned-text renderings (stage tree, metrics
  table, filter funnel).

Instrumented pipeline functions accept ``telemetry: Telemetry | None``;
``None`` (the default) means the shared :data:`NULL_TELEMETRY` bundle, so
uninstrumented callers pay one attribute lookup per stage and nothing per
inner-loop element.  Recording never draws randomness: a traced run's
artifacts are byte-identical to an untraced one.
"""

from repro.obs.export import (
    BENCH_FORMAT,
    FUNNEL_COUNTERS,
    render_filter_funnel,
    render_metrics_table,
    render_span_tree,
    telemetry_from_json,
    telemetry_to_json,
    write_metrics_json,
)
from repro.obs.logging import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    NullLogger,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    GLOBAL_METRICS,
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
    global_metrics,
    summarize,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, ensure_telemetry
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "BENCH_FORMAT",
    "DEBUG",
    "ERROR",
    "FUNNEL_COUNTERS",
    "GLOBAL_METRICS",
    "HistogramSummary",
    "INFO",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullLogger",
    "NullMetrics",
    "NullTracer",
    "Span",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "WARNING",
    "configure_logging",
    "ensure_telemetry",
    "get_logger",
    "global_metrics",
    "render_filter_funnel",
    "render_metrics_table",
    "render_span_tree",
    "summarize",
    "telemetry_from_json",
    "telemetry_to_json",
    "write_metrics_json",
]
