"""Observability for the study pipeline: tracing, metrics, logging, export.

The subsystem's pieces:

* :mod:`repro.obs.trace` — nested stage spans with wall-clock durations
  and absolute start offsets (:class:`Tracer`); disabled mode is a shared
  no-op span with zero clock calls.
* :mod:`repro.obs.prof` — per-stage resource profiling
  (:class:`StageProfiler`): CPU vs wall time, peak RSS, rows/sec.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and histograms named ``<stage>.<name>``.
* :mod:`repro.obs.stream` — the live JSONL event stream
  (:class:`EventStream`): stage transitions, progress with ETA,
  heartbeats; ``repro tail`` renders it.
* :mod:`repro.obs.logging` — :func:`get_logger`, the repo's single
  structured-logging entry point (text or JSON lines).
* :mod:`repro.obs.export` — full and compact JSON snapshots in the
  ``BENCH_*.json`` trajectory format, Chrome trace-event export, and
  aligned-text renderings (stage tree, metrics table, filter funnel,
  resource profile).

The executor flight recorder (per-worker utilization, queue-wait,
stragglers) lives with the backends in :mod:`repro.parallel.flight` and
rides on the same :class:`Telemetry` bundle.

Instrumented pipeline functions accept ``telemetry: Telemetry | None``;
``None`` (the default) means the shared :data:`NULL_TELEMETRY` bundle, so
uninstrumented callers pay one attribute lookup per stage and nothing per
inner-loop element.  Recording never draws randomness: a traced, profiled,
or streamed run's artifacts are byte-identical to an untraced one.
"""

from repro.obs.export import (
    BENCH_FORMAT,
    COMPACT_SCHEMA,
    FUNNEL_COUNTERS,
    aggregate_stages,
    chrome_trace_json,
    compact_snapshot,
    render_filter_funnel,
    render_metrics_table,
    render_span_tree,
    telemetry_from_json,
    telemetry_to_json,
    write_chrome_trace,
    write_compact_snapshot,
    write_metrics_json,
)
from repro.obs.logging import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    NullLogger,
    StructuredLogger,
    configure_logging,
    get_logger,
    logging_config,
    restore_logging,
)
from repro.obs.metrics import (
    GLOBAL_METRICS,
    HistogramSummary,
    MetricsRegistry,
    NullMetrics,
    global_metrics,
    summarize,
)
from repro.obs.prof import (
    StageProfile,
    StageProfiler,
    peak_rss_kb,
    profile_stages,
    record_throughput_gauges,
    render_profile,
)
from repro.obs.stream import (
    NULL_STREAM,
    STREAM_FORMAT,
    EventStream,
    NullEventStream,
    RingBufferSink,
    follow_events,
    format_event,
    latest_progress,
    read_events,
    render_progress,
    resolve_events_path,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, ensure_telemetry
from repro.obs.trace import NullTracer, Span, Tracer, shift_spans

__all__ = [
    "BENCH_FORMAT",
    "COMPACT_SCHEMA",
    "DEBUG",
    "ERROR",
    "EventStream",
    "FUNNEL_COUNTERS",
    "GLOBAL_METRICS",
    "HistogramSummary",
    "INFO",
    "MetricsRegistry",
    "NULL_STREAM",
    "NULL_TELEMETRY",
    "NullEventStream",
    "NullLogger",
    "NullMetrics",
    "NullTracer",
    "RingBufferSink",
    "STREAM_FORMAT",
    "Span",
    "StageProfile",
    "StageProfiler",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "WARNING",
    "aggregate_stages",
    "chrome_trace_json",
    "compact_snapshot",
    "configure_logging",
    "ensure_telemetry",
    "follow_events",
    "format_event",
    "get_logger",
    "global_metrics",
    "latest_progress",
    "logging_config",
    "peak_rss_kb",
    "profile_stages",
    "read_events",
    "record_throughput_gauges",
    "render_filter_funnel",
    "render_metrics_table",
    "render_profile",
    "render_progress",
    "render_span_tree",
    "resolve_events_path",
    "restore_logging",
    "shift_spans",
    "summarize",
    "telemetry_from_json",
    "telemetry_to_json",
    "write_chrome_trace",
    "write_compact_snapshot",
    "write_metrics_json",
]
