"""Live telemetry: a JSONL event stream and its tailing/rendering side.

An :class:`EventStream` is the run's heartbeat: a append-only JSONL file
(one event object per line) carrying monotonic sequence numbers, elapsed
times, stage transitions, per-label completion progress with ETA, and
periodic heartbeats.  It exists so a *running* study or sweep campaign can
be observed from another terminal (``repro tail events.jsonl``) — the
post-hoc span tree answers "how long did it take", the stream answers
"how far along is it *right now*".

Durability discipline: every event is serialised to one line and written
with a **single** ``write`` call followed by a flush, so a killed run
leaves a file of complete JSON lines (the reader tolerates a torn final
line, which can only occur if the OS itself was interrupted mid-write).
The stream is observability-only — nothing in it feeds back into the
pipeline, and emitting events never touches the RNG streams, so a
streamed run's artifacts are byte-identical to a bare run's.

:data:`NULL_STREAM` is the zero-cost disabled mode: every call is a no-op
with no clock reads and no allocation.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterator

#: Format tag stamped into the stream's opening event.
STREAM_FORMAT = "repro-events-v1"

#: Default minimum spacing between heartbeat events, seconds.
HEARTBEAT_INTERVAL_S = 1.0

#: Span depth up to which stage events are emitted (study + direct stages).
STAGE_EVENT_DEPTH = 2


class EventStream:
    """Append-only JSONL sink with monotonic sequence numbers.

    ``target`` is a path (opened, line-flushed) or any object with
    ``write``/``flush`` (e.g. a ``StringIO`` in tests).  The clock is
    injectable so tests can pin elapsed times and ETAs.
    """

    enabled = True

    def __init__(
        self,
        target: str | Path | Any,
        clock: Callable[[], float] = time.perf_counter,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        stage_depth: int = STAGE_EVENT_DEPTH,
    ) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file = path.open("w", encoding="utf-8")
            self.path: Path | None = path
        else:
            self._file = target
            self.path = None
        self._clock = clock
        self._origin = clock()
        self._seq = 0
        self._closed = False
        self._last_heartbeat_s = -heartbeat_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.stage_depth = stage_depth
        self.emit("stream_start", format=STREAM_FORMAT)

    # -- emission ---------------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (single write + flush; see module docstring)."""
        if self._closed:
            return
        record = {"seq": self._seq, "t_s": round(self._clock() - self._origin, 6), "event": event}
        record.update(fields)
        self._seq += 1
        self._file.write(json.dumps(record, default=str) + "\n")
        self._file.flush()

    def progress(self, label: str, completed: int, total: int, **fields: Any) -> None:
        """Emit a completion-progress event with percent and ETA.

        The ETA extrapolates the observed per-unit rate over the remaining
        units; it is ``None`` until the first unit completes.
        """
        elapsed = self._clock() - self._origin
        percent = 100.0 * completed / total if total else 100.0
        eta_s = elapsed * (total - completed) / completed if completed else None
        self.emit(
            "progress",
            label=label,
            completed=completed,
            total=total,
            percent=round(percent, 1),
            eta_s=round(eta_s, 3) if eta_s is not None else None,
            **fields,
        )

    def heartbeat(self, **fields: Any) -> None:
        """Emit a heartbeat, rate-limited to one per ``heartbeat_interval_s``."""
        now = self._clock() - self._origin
        if now - self._last_heartbeat_s < self.heartbeat_interval_s:
            return
        self._last_heartbeat_s = now
        self.emit("heartbeat", **fields)

    def close(self) -> None:
        """Emit the terminal event and close the underlying file (idempotent)."""
        if self._closed:
            return
        self.emit("stream_end", events=self._seq)
        self._closed = True
        if self.path is not None:
            self._file.close()


class RingBufferSink:
    """A file-like event sink keeping the last ``capacity`` lines in memory.

    Drop-in ``target`` for :class:`EventStream` when a long-running
    process (``repro serve``) wants to *serve* its own recent events over
    an API instead of re-reading a growing file: every line is retained
    in a bounded deque (and optionally tee'd to ``path`` for post-mortem
    tails), and :meth:`events` parses a thread-safe snapshot.  Writers
    and readers may live on different threads — the serve scheduler
    emits, HTTP handler threads snapshot.
    """

    def __init__(self, capacity: int = 512, path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lines: deque[str] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_lines = 0
        self._file = None
        if path is not None:
            file_path = Path(path)
            file_path.parent.mkdir(parents=True, exist_ok=True)
            self._file = file_path.open("w", encoding="utf-8")

    def write(self, text: str) -> int:
        with self._lock:
            for line in text.splitlines():
                if line.strip():
                    self._lines.append(line)
                    self.total_lines += 1
        if self._file is not None:
            self._file.write(text)
        return len(text)

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Close the tee file (the in-memory ring stays readable)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def events(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The most recent events, parsed, oldest first (thread-safe)."""
        with self._lock:
            lines = list(self._lines)
        if limit is not None:
            lines = lines[-limit:]
        out: list[dict[str, Any]] = []
        for line in lines:
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:  # pragma: no cover - writer emits full lines
                continue
        return out


class NullEventStream:
    """Disabled stream: every call bottoms out immediately (no clock reads)."""

    enabled = False
    path = None
    stage_depth = 0

    def emit(self, event: str, **fields: Any) -> None:
        pass

    def progress(self, label: str, completed: int, total: int, **fields: Any) -> None:
        pass

    def heartbeat(self, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_STREAM = NullEventStream()


# -- reading and rendering --------------------------------------------------------


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse an events file into a list of event dicts.

    A torn final line (killed run, interrupted write) is skipped; a torn
    line anywhere else raises — it means the file is not an event stream.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line: the run was killed mid-write
            raise
    return events


def latest_progress(events: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """The most recent progress event per label, in first-seen label order."""
    latest: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.get("event") == "progress":
            latest[event["label"]] = event
    return latest


def render_progress(events: list[dict[str, Any]]) -> str:
    """A human-readable snapshot of where the run is right now."""
    if not events:
        return "no events recorded"
    lines: list[str] = []
    ended = any(e.get("event") == "stream_end" for e in events)
    stages = [e for e in events if e.get("event") in ("stage_start", "stage_end")]
    if stages:
        last = stages[-1]
        verb = "finished" if last["event"] == "stage_end" else "running"
        lines.append(f"stage: {verb} {last.get('stage')} (t={last.get('t_s', 0):.1f}s)")
    for label, event in latest_progress(events).items():
        eta = event.get("eta_s")
        eta_text = f" eta {eta:.1f}s" if eta is not None else ""
        lines.append(
            f"{label}: {event['completed']}/{event['total']} "
            f"({event['percent']:.1f}%){eta_text} elapsed {event.get('t_s', 0):.1f}s"
        )
    heartbeats = sum(1 for e in events if e.get("event") == "heartbeat")
    if heartbeats:
        lines.append(f"heartbeats: {heartbeats}")
    lines.append("run complete" if ended else "run in progress")
    return "\n".join(lines)


def format_event(event: dict[str, Any]) -> str:
    """One event as a one-line log entry (the ``repro tail --follow`` view)."""
    kind = event.get("event", "?")
    t_s = float(event.get("t_s", 0.0))
    prefix = f"[{t_s:8.2f}s]"
    if kind == "progress":
        eta = event.get("eta_s")
        eta_text = f" eta {eta:.1f}s" if eta is not None else ""
        return (
            f"{prefix} {event.get('label')}: {event.get('completed')}/{event.get('total')} "
            f"({event.get('percent', 0):.1f}%){eta_text}"
        )
    if kind in ("stage_start", "stage_end"):
        verb = "start" if kind == "stage_start" else "end  "
        extra = f" ({event['duration_ms']:.1f} ms)" if "duration_ms" in event else ""
        return f"{prefix} stage {verb} {event.get('stage')}{extra}"
    skip = {"seq", "t_s", "event"}
    fields = " ".join(f"{key}={value}" for key, value in event.items() if key not in skip)
    return f"{prefix} {kind}{' ' + fields if fields else ''}"


def resolve_events_path(target: str | Path) -> Path:
    """``target`` itself, or ``events.jsonl`` inside it when it is a directory."""
    path = Path(target)
    if path.is_dir():
        candidate = path / "events.jsonl"
        if not candidate.exists():
            raise FileNotFoundError(f"no events.jsonl inside directory {path}")
        return candidate
    if not path.exists():
        raise FileNotFoundError(f"no such events file: {path}")
    return path


def follow_events(
    path: str | Path,
    poll_interval_s: float = 0.5,
    timeout_s: float | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield events as they are appended, until ``stream_end`` or timeout.

    The reader keeps a byte offset and only parses complete lines, so it
    can run concurrently with a live writer.  ``timeout_s`` bounds how
    long it waits without seeing a *new* event (None = wait forever).
    """
    path = Path(path)
    offset = 0
    pending = ""
    last_new = time.monotonic()
    while True:
        with path.open("r", encoding="utf-8") as handle:
            handle.seek(offset)
            chunk = handle.read()
            offset = handle.tell()
        pending += chunk
        ended = False
        while "\n" in pending:
            line, pending = pending.split("\n", 1)
            if not line.strip():
                continue
            event = json.loads(line)
            last_new = time.monotonic()
            yield event
            if event.get("event") == "stream_end":
                ended = True
        if ended:
            return
        if timeout_s is not None and time.monotonic() - last_new > timeout_s:
            return
        time.sleep(poll_interval_s)
