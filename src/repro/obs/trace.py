"""Stage tracing: nested, context-manager spans with wall-clock durations.

A :class:`Tracer` records a forest of :class:`Span` objects; each span is a
context manager, so instrumented code reads as::

    with tracer.span("scan", epoch="2023"):
        ...

Tracing never touches the RNG streams — spans only read the wall clock —
so a traced pipeline run produces byte-identical artifacts to an untraced
one.  When tracing is disabled the :class:`NullTracer` hands out a shared
no-op span that makes **no clock calls at all**, keeping disabled-mode
overhead to a single attribute lookup per instrumented block.
"""

from __future__ import annotations

import time
from typing import Any, Callable


class Span:
    """One timed stage: a name, attributes, a duration, and child spans."""

    __slots__ = ("name", "attributes", "children", "duration_s", "_tracer", "_start_s")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.duration_s: float = 0.0
        self._tracer = tracer
        self._start_s: float = 0.0

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration in milliseconds (0 until the span exits)."""
        return 1000.0 * self.duration_s

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on an open span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start_s = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = self._tracer._clock() - self._start_s
        self._tracer._pop(self)
        return False

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (nested, durations in milliseconds)."""
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_json() for child in self.children],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree exported with :meth:`to_json`."""
        span = cls(NULL_TRACER, data["name"], dict(data.get("attributes", {})))  # type: ignore[arg-type]
        span.duration_s = float(data.get("duration_ms", 0.0)) / 1000.0
        span.children = [cls.from_json(child) for child in data.get("children", ())]
        return span

    def walk(self):
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.1f}ms, {len(self.children)} children)"


class Tracer:
    """Records nested spans; the clock is injectable for tests."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, attached to the current parent when entered."""
        return Span(self, name, attributes)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def adopt(self, spans: list[Span]) -> None:
        """Graft already-finished spans under the currently-open span.

        Used to merge span forests recorded out-of-process (worker shards)
        back into the parent trace: the adopted spans keep their recorded
        durations and children, and attach to whatever span is open at the
        merge point (or become roots if none is).
        """
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)

    def find(self, name: str) -> Span | None:
        """The first recorded span named ``name``, depth first."""
        for root in self.roots:
            for span in root.walk():
                if span.name == name:
                    return span
        return None

    def span_names(self) -> set[str]:
        """All recorded span names."""
        return {span.name for root in self.roots for span in root.walk()}


class _NullSpan:
    """Shared do-nothing span: no clock calls, no allocation per use."""

    __slots__ = ()
    duration_s = 0.0
    duration_ms = 0.0
    name = ""
    attributes: dict[str, Any] = {}
    children: tuple = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: hands out one shared no-op span."""

    enabled = False
    roots: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, spans: list[Span]) -> None:
        pass

    def find(self, name: str) -> None:
        return None

    def span_names(self) -> set[str]:
        return set()


NULL_TRACER = NullTracer()
