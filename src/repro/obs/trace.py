"""Stage tracing: nested, context-manager spans with wall-clock durations.

A :class:`Tracer` records a forest of :class:`Span` objects; each span is a
context manager, so instrumented code reads as::

    with tracer.span("scan", epoch="2023"):
        ...

Each span records its wall-clock duration **and** its start offset from
the tracer's origin (the instant its first span opened), which is what
lets a recorded forest be replayed on an absolute timeline — e.g. exported
as Chrome trace events (:func:`repro.obs.export.write_chrome_trace`).

Two optional attachments extend what a span records without changing the
instrumented code:

* a :class:`~repro.obs.prof.StageProfiler` (``tracer.profiler``) samples
  CPU time and memory around every span and attaches the readings as span
  attributes;
* an :class:`~repro.obs.stream.EventStream` (``tracer.stream``) receives
  ``stage_start`` / ``stage_end`` events for shallow spans (up to the
  stream's ``stage_depth``), giving live runs a progress feed.

Tracing never touches the RNG streams — spans only read clocks — so a
traced pipeline run produces byte-identical artifacts to an untraced
one.  When tracing is disabled the :class:`NullTracer` hands out a shared
no-op span that makes **no clock calls at all**, keeping disabled-mode
overhead to a single attribute lookup per instrumented block; a live
tracer without a profiler or stream pays one ``is None`` check per span
for each.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only (prof/stream import nothing back)
    from repro.obs.prof import StageProfiler
    from repro.obs.stream import EventStream


class Span:
    """One timed stage: a name, attributes, a duration, and child spans."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "duration_s",
        "start_s",
        "_tracer",
        "_start_s",
        "_prof",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.duration_s: float = 0.0
        #: Start offset from the tracer's origin, seconds (0 until entered).
        self.start_s: float = 0.0
        self._tracer = tracer
        self._start_s: float = 0.0
        self._prof = None

    @property
    def duration_ms(self) -> float:
        """Wall-clock duration in milliseconds (0 until the span exits)."""
        return 1000.0 * self.duration_s

    @property
    def start_ms(self) -> float:
        """Start offset from the tracer origin in milliseconds."""
        return 1000.0 * self.start_s

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes on an open span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._push(self)
        profiler = tracer.profiler
        if profiler is not None:
            self._prof = profiler.begin()
        stream = tracer.stream
        if stream is not None and len(tracer._stack) <= stream.stage_depth:
            stream.emit("stage_start", stage=self.name)
        self._start_s = tracer._clock()
        if tracer._origin is None:
            tracer._set_origin(self._start_s)
        self.start_s = self._start_s - tracer._origin
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.duration_s = tracer._clock() - self._start_s
        if self._prof is not None:
            tracer.profiler.end(self._prof, self)
            self._prof = None
        stream = tracer.stream
        if stream is not None and len(tracer._stack) <= stream.stage_depth:
            stream.emit("stage_end", stage=self.name, duration_ms=round(self.duration_ms, 3))
        tracer._pop(self)
        return False

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (nested, times in milliseconds)."""
        return {
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_json() for child in self.children],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree exported with :meth:`to_json`."""
        span = cls(NULL_TRACER, data["name"], dict(data.get("attributes", {})))  # type: ignore[arg-type]
        span.duration_s = float(data.get("duration_ms", 0.0)) / 1000.0
        span.start_s = float(data.get("start_ms", 0.0)) / 1000.0
        span.children = [cls.from_json(child) for child in data.get("children", ())]
        return span

    def walk(self):
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_ms:.1f}ms, {len(self.children)} children)"


def shift_spans(spans: Iterable[Span], delta_s: float) -> None:
    """Shift whole span trees along the timeline by ``delta_s`` seconds.

    Used when adopting spans recorded against another tracer's origin
    (worker processes): the shift rebases them onto the adopter's
    timeline.  Durations are untouched.
    """
    for root in spans:
        for span in root.walk():
            span.start_s += delta_s


class Tracer:
    """Records nested spans; the clock is injectable for tests."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        profiler: "StageProfiler | None" = None,
        stream: "EventStream | None" = None,
    ) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock
        #: Clock reading of the first span's start (None until one opens).
        self._origin: float | None = None
        #: Wall-clock time (``time.time``) at the origin instant; lets span
        #: forests recorded by different processes be rebased onto one
        #: timeline (see :func:`shift_spans`).
        self.wall_origin: float | None = None
        self.profiler = profiler
        self.stream = stream

    def _set_origin(self, clock_now: float) -> None:
        self._origin = clock_now
        self.wall_origin = time.time()

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, attached to the current parent when entered."""
        return Span(self, name, attributes)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def adopt(self, spans: list[Span]) -> None:
        """Graft already-finished spans under the currently-open span.

        Used to merge span forests recorded out-of-process (worker shards)
        back into the parent trace: the adopted spans keep their recorded
        durations and children, and attach to whatever span is open at the
        merge point (or become roots if none is).  Adoption is
        order-stable: consecutive calls append, never reorder (see the
        property tests in ``tests/test_obs.py``).  Spans recorded against
        another origin should be rebased first (:func:`shift_spans`).
        """
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)

    def find(self, name: str) -> Span | None:
        """The first recorded span named ``name``, depth first."""
        for root in self.roots:
            for span in root.walk():
                if span.name == name:
                    return span
        return None

    def span_names(self) -> set[str]:
        """All recorded span names."""
        return {span.name for root in self.roots for span in root.walk()}


class _NullSpan:
    """Shared do-nothing span: no clock calls, no allocation per use."""

    __slots__ = ()
    duration_s = 0.0
    duration_ms = 0.0
    start_s = 0.0
    start_ms = 0.0
    name = ""
    attributes: dict[str, Any] = {}
    children: tuple = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: hands out one shared no-op span."""

    enabled = False
    roots: tuple = ()
    profiler = None
    stream = None
    wall_origin = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, spans: list[Span]) -> None:
        pass

    def find(self, name: str) -> None:
        return None

    def span_names(self) -> set[str]:
        return set()


NULL_TRACER = NullTracer()
