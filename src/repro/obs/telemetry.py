"""The telemetry bundle threaded through the pipeline.

A :class:`Telemetry` groups one tracer, one metrics registry, and one
logger, and exposes their recording surface directly (``span`` / ``count``
/ ``gauge`` / ``observe`` / ``log``) so instrumented code deals with a
single object.  :meth:`Telemetry.disabled` returns a process-wide no-op
singleton: every call on it bottoms out immediately with no clock reads,
no allocation, and no RNG interaction — the zero-cost default.
"""

from __future__ import annotations

from typing import Any, TextIO

from repro.obs.logging import (
    INFO,
    NULL_LOGGER,
    StructuredLogger,
    configure_logging,
    level_from_name,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


class Telemetry:
    """One study run's tracer + metrics + logger."""

    __slots__ = ("tracer", "metrics", "logger")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
        logger: StructuredLogger | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER

    @property
    def enabled(self) -> bool:
        """Whether any recording happens at all."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (the pipeline's default)."""
        return NULL_TELEMETRY

    @classmethod
    def capture(
        cls,
        json_logs: bool = False,
        log_level: int | str = INFO,
        stream: TextIO | None = None,
    ) -> "Telemetry":
        """A live bundle: real tracer, real registry, stderr logger.

        Also flips the shared :func:`repro.obs.logging.get_logger` loggers
        to the requested level/mode so library-level components (scenario
        cache, traceroute engine) log consistently with the run.  ``stream``
        only redirects this bundle's own logger; shared loggers keep
        writing to the process stderr.
        """
        configure_logging(level=log_level, json_mode=json_logs)
        logger = StructuredLogger(
            "repro.study", level=level_from_name(log_level), json_mode=json_logs, stream=stream
        )
        return cls(tracer=Tracer(), metrics=MetricsRegistry(), logger=logger)

    # -- recording surface (delegates) ------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a stage span (context manager)."""
        return self.tracer.span(name, **attributes)

    def count(self, name: str, value: float = 1) -> None:
        """Increment a counter."""
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation."""
        self.metrics.observe(name, value)

    def log(self, event: str, **fields: Any) -> None:
        """Log an INFO event through the bundle's logger."""
        self.logger.info(event, **fields)


class _NullTelemetry(Telemetry):
    """The do-nothing bundle; all members are the shared null objects."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(tracer=NULL_TRACER, metrics=NULL_METRICS, logger=NULL_LOGGER)

    def log(self, event: str, **fields: Any) -> None:
        pass


NULL_TELEMETRY = _NullTelemetry()


def ensure_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """``telemetry`` or the shared no-op bundle."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
