"""The telemetry bundle threaded through the pipeline.

A :class:`Telemetry` groups one tracer, one metrics registry, one logger,
one event stream, and one executor flight recorder, and exposes their
recording surface directly (``span`` / ``count`` / ``gauge`` / ``observe``
/ ``log`` / ``emit`` / ``progress``) so instrumented code deals with a
single object.  :meth:`Telemetry.disabled` returns a process-wide no-op
singleton: every call on it bottoms out immediately with no clock reads,
no allocation, and no RNG interaction — the zero-cost default.

:meth:`Telemetry.capture` flips the process-global shared-logger
configuration; the bundle remembers what it displaced and is a context
manager, so the polite form is::

    with Telemetry.capture(log_level="debug") as telemetry:
        run_study(config, telemetry=telemetry)
    # shared loggers restored, stream closed, profiler torn down

Callers that keep the bundle open (the CLI does, to render reports after
the run) can call :meth:`Telemetry.restore` explicitly instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, TextIO

from repro.obs.logging import (
    INFO,
    NULL_LOGGER,
    StructuredLogger,
    configure_logging,
    level_from_name,
    restore_logging,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.prof import StageProfiler
from repro.obs.stream import NULL_STREAM, EventStream, NullEventStream
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.flight import FlightRecorder, NullFlightRecorder


class Telemetry:
    """One study run's tracer + metrics + logger + stream + flight recorder."""

    # ``repro.parallel.flight`` imports back into the pipeline packages, so
    # the flight recorder is bound lazily (slot ``_flight`` + property
    # ``flight``) to keep ``repro.obs`` importable on its own.
    __slots__ = ("tracer", "metrics", "logger", "stream", "_flight", "_prior_logging")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | NullMetrics | None = None,
        logger: StructuredLogger | None = None,
        stream: EventStream | NullEventStream | None = None,
        flight: "FlightRecorder | NullFlightRecorder | None" = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.stream = stream if stream is not None else NULL_STREAM
        self._flight = flight
        self._prior_logging: dict | None = None

    @property
    def flight(self) -> "FlightRecorder | NullFlightRecorder":
        """The executor flight recorder (the shared null one by default)."""
        if self._flight is None:
            from repro.parallel.flight import NULL_FLIGHT

            self._flight = NULL_FLIGHT
        return self._flight

    @property
    def enabled(self) -> bool:
        """Whether any recording happens at all."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (the pipeline's default)."""
        return NULL_TELEMETRY

    @classmethod
    def capture(
        cls,
        json_logs: bool = False,
        log_level: int | str = INFO,
        stream: TextIO | None = None,
        profile: bool = False,
        events: str | Path | EventStream | None = None,
        trace_python_alloc: bool = False,
    ) -> "Telemetry":
        """A live bundle: real tracer, real registry, stderr logger.

        ``profile=True`` attaches a :class:`~repro.obs.prof.StageProfiler`
        so every span also records CPU time and peak RSS
        (``trace_python_alloc=True`` adds tracemalloc deltas, slower).
        ``events`` (a path or an open :class:`EventStream`) attaches a live
        JSONL event stream fed by stage transitions and executor progress.
        A live bundle always carries a real flight recorder — recording is
        one list append per completed shard.

        Also flips the shared :func:`repro.obs.logging.get_logger` loggers
        to the requested level/mode so library-level components (scenario
        cache, traceroute engine) log consistently with the run; the
        displaced configuration is remembered, and :meth:`restore` (or
        exiting the bundle's ``with`` block) puts it back.  ``stream``
        only redirects this bundle's own logger; shared loggers keep
        writing to the process stderr.
        """
        from repro.parallel.flight import FlightRecorder

        prior = configure_logging(level=log_level, json_mode=json_logs)
        logger = StructuredLogger(
            "repro.study", level=level_from_name(log_level), json_mode=json_logs, stream=stream
        )
        profiler = StageProfiler(trace_python_alloc=trace_python_alloc) if profile else None
        if events is None:
            event_stream: EventStream | NullEventStream = NULL_STREAM
        elif isinstance(events, (str, Path)):
            event_stream = EventStream(events)
        else:
            event_stream = events
        telemetry = cls(
            tracer=Tracer(
                profiler=profiler,
                stream=event_stream if event_stream.enabled else None,
            ),
            metrics=MetricsRegistry(),
            logger=logger,
            stream=event_stream,
            flight=FlightRecorder(),
        )
        telemetry._prior_logging = prior
        return telemetry

    def restore(self) -> None:
        """Undo :meth:`capture`'s process-global effects (idempotent).

        Puts the shared-logger configuration back to what ``capture``
        displaced, closes the event stream (emitting ``stream_end``), and
        tears down the profiler's tracemalloc session if it owns one.
        """
        if self._prior_logging is not None:
            restore_logging(self._prior_logging)
            self._prior_logging = None
        self.stream.close()
        profiler = self.tracer.profiler
        if profiler is not None:
            profiler.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.restore()
        return False

    # -- recording surface (delegates) ------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a stage span (context manager)."""
        return self.tracer.span(name, **attributes)

    def count(self, name: str, value: float = 1) -> None:
        """Increment a counter."""
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation."""
        self.metrics.observe(name, value)

    def log(self, event: str, **fields: Any) -> None:
        """Log an INFO event through the bundle's logger."""
        self.logger.info(event, **fields)

    def emit(self, event: str, **fields: Any) -> None:
        """Append an event to the live stream (no-op when not streaming)."""
        self.stream.emit(event, **fields)

    def progress(self, label: str, completed: int, total: int, **fields: Any) -> None:
        """Stream a completion-progress event with percent and ETA."""
        self.stream.progress(label, completed, total, **fields)

    def heartbeat(self, **fields: Any) -> None:
        """Stream a rate-limited liveness heartbeat."""
        self.stream.heartbeat(**fields)


class _NullTelemetry(Telemetry):
    """The do-nothing bundle; all members are the shared null objects."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(
            tracer=NULL_TRACER, metrics=NULL_METRICS, logger=NULL_LOGGER, stream=NULL_STREAM
        )

    def log(self, event: str, **fields: Any) -> None:
        pass


NULL_TELEMETRY = _NullTelemetry()


def ensure_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """``telemetry`` or the shared no-op bundle."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
