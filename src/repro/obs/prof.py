"""Per-stage resource profiling: CPU time, peak RSS, and throughput.

A :class:`StageProfiler` attaches to a :class:`~repro.obs.trace.Tracer`;
every span then records, alongside its wall-clock duration:

* ``cpu_ms`` — process CPU time consumed inside the span
  (:func:`time.process_time` delta: user+system, all threads);
* ``rss_peak_kb`` — the process peak RSS high-water mark at span exit
  (``resource.getrusage``; monotone, so a *rise* across a span means the
  span set a new peak);
* ``rss_delta_kb`` — how much the high-water mark rose during the span;
* with ``trace_python_alloc=True``, ``py_delta_kb`` / ``py_peak_kb`` —
  :mod:`tracemalloc` deltas attributing Python-heap allocation to stages
  (substantially slower; off by default).

:func:`profile_stages` aggregates the profiled span forest per stage name
(wall vs CPU, CPU utilization, peak RSS, summed ``n_items``, rows/sec) —
the per-stage peak-RSS / rows-per-second substrate the planetary-scale
``BENCH_scale.json`` trajectory needs — and
:func:`record_throughput_gauges` lands the same numbers as ``prof.*``
gauges on the run's metrics registry.

Profiling is opt-in (``Telemetry.capture(profile=True)``); a tracer with
no profiler makes exactly one ``is None`` check per span, and disabled
telemetry keeps making zero clock calls.  Reading clocks and RSS never
touches the RNG streams, so profiled runs stay byte-identical.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro._util import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports nothing from here)
    from repro.obs.telemetry import Telemetry
    from repro.obs.trace import Span

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> float:
    """The process's peak resident-set size in KiB (0.0 where unsupported).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalised here.
    """
    if resource is None:  # pragma: no cover - Windows
        return 0.0
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak /= 1024.0
    return peak


@dataclass(frozen=True)
class _ProfStart:
    """Baseline readings captured when a profiled span opens."""

    cpu_s: float
    rss_kb: float
    py_current_kb: float | None


class StageProfiler:
    """Samples CPU time and memory around spans; attaches span attributes.

    The CPU clock and RSS reader are injectable for deterministic tests.
    One profiler serves one tracer; it owns no state beyond the optional
    tracemalloc session it started.
    """

    def __init__(
        self,
        cpu_clock: Callable[[], float] = time.process_time,
        rss_reader: Callable[[], float] = peak_rss_kb,
        trace_python_alloc: bool = False,
    ) -> None:
        self._cpu_clock = cpu_clock
        self._rss_reader = rss_reader
        self._owns_tracemalloc = False
        if trace_python_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self.trace_python_alloc = trace_python_alloc

    def begin(self) -> _ProfStart:
        """Baseline readings for a span that just opened."""
        py_current = None
        if self.trace_python_alloc:
            py_current = tracemalloc.get_traced_memory()[0] / 1024.0
        return _ProfStart(
            cpu_s=self._cpu_clock(), rss_kb=self._rss_reader(), py_current_kb=py_current
        )

    def end(self, start: _ProfStart, span: "Span") -> None:
        """Attach the span's resource profile to its attributes."""
        rss_kb = self._rss_reader()
        span.attributes["cpu_ms"] = round(1000.0 * (self._cpu_clock() - start.cpu_s), 3)
        span.attributes["rss_peak_kb"] = rss_kb
        span.attributes["rss_delta_kb"] = round(rss_kb - start.rss_kb, 1)
        if start.py_current_kb is not None:
            current, peak = tracemalloc.get_traced_memory()
            span.attributes["py_delta_kb"] = round(current / 1024.0 - start.py_current_kb, 1)
            span.attributes["py_peak_kb"] = round(peak / 1024.0, 1)

    def close(self) -> None:
        """Stop the tracemalloc session if this profiler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False


@dataclass(frozen=True)
class StageProfile:
    """One stage name's aggregated resource profile across its spans."""

    name: str
    count: int
    wall_ms: float
    cpu_ms: float
    rss_peak_kb: float
    n_items: int

    @property
    def cpu_utilization(self) -> float:
        """CPU time over wall time (can exceed 1.0 with worker processes)."""
        return self.cpu_ms / self.wall_ms if self.wall_ms > 0 else 0.0

    @property
    def rows_per_s(self) -> float:
        """Work units per wall second (0 when the stage recorded no items)."""
        return 1000.0 * self.n_items / self.wall_ms if self.wall_ms > 0 and self.n_items else 0.0

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "count": self.count,
            "wall_ms": round(self.wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "cpu_utilization": round(self.cpu_utilization, 3),
            "rss_peak_kb": self.rss_peak_kb,
            "n_items": self.n_items,
            "rows_per_s": round(self.rows_per_s, 1),
        }


def profile_stages(telemetry: "Telemetry") -> list[StageProfile]:
    """Aggregate the profiled span forest per stage name (recording order).

    Only spans that carry a ``cpu_ms`` attribute (i.e. ran under a
    profiler) participate; an unprofiled trace yields an empty list.
    """
    order: list[str] = []
    grouped: dict[str, list["Span"]] = {}
    for root in telemetry.tracer.roots:
        for span in root.walk():
            if "cpu_ms" not in span.attributes:
                continue
            if span.name not in grouped:
                grouped[span.name] = []
                order.append(span.name)
            grouped[span.name].append(span)
    profiles = []
    for name in order:
        spans = grouped[name]
        profiles.append(
            StageProfile(
                name=name,
                count=len(spans),
                wall_ms=sum(s.duration_ms for s in spans),
                cpu_ms=sum(float(s.attributes["cpu_ms"]) for s in spans),
                rss_peak_kb=max(float(s.attributes.get("rss_peak_kb", 0.0)) for s in spans),
                n_items=sum(int(s.attributes.get("n_items", 0)) for s in spans),
            )
        )
    return profiles


def render_profile(telemetry: "Telemetry") -> str:
    """The per-stage resource table (wall/CPU/utilization/RSS/throughput)."""
    profiles = profile_stages(telemetry)
    if not profiles:
        return "no resource profile recorded (run with profile=True / --profile)"
    rows = [
        [
            profile.name,
            profile.count,
            f"{profile.wall_ms:.1f}",
            f"{profile.cpu_ms:.1f}",
            f"{profile.cpu_utilization:.2f}",
            f"{profile.rss_peak_kb:.0f}",
            f"{profile.rows_per_s:.1f}" if profile.n_items else "-",
        ]
        for profile in profiles
    ]
    return format_table(
        ["stage", "spans", "wall ms", "cpu ms", "cpu util", "peak rss KiB", "rows/s"], rows
    )


def record_throughput_gauges(telemetry: "Telemetry") -> None:
    """Land per-stage throughput and utilization as ``prof.*`` gauges.

    Called by the pipeline after a profiled run; gauges follow the
    ``prof.<stage>.rows_per_s`` / ``prof.<stage>.cpu_utilization`` /
    ``prof.<stage>.rss_peak_kb`` convention so exported snapshots carry
    the per-stage scaling substrate without re-walking the span forest.
    """
    for profile in profile_stages(telemetry):
        if profile.n_items:
            telemetry.gauge(f"prof.{profile.name}.rows_per_s", round(profile.rows_per_s, 1))
        telemetry.gauge(
            f"prof.{profile.name}.cpu_utilization", round(profile.cpu_utilization, 3)
        )
        telemetry.gauge(f"prof.{profile.name}.rss_peak_kb", profile.rss_peak_kb)
