"""Structured logging: the repo's single logging entry point.

Every component that wants to log obtains a logger via :func:`get_logger`
and emits *events with fields*::

    log = get_logger("repro.traceroute")
    log.debug("unroutable destination", ip=ip, source_asn=source.asn)

Two render modes: human-readable text lines and JSON lines (one object per
line, machine-parseable).  Log lines carry no timestamps, so captured
streams are deterministic and diffable across runs.  The default level is
WARNING — library internals stay silent unless the caller (e.g. the CLI's
``--trace`` / ``--log-json`` flags) opts in via :func:`configure_logging`.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_LEVELS_BY_NAME = {name: level for level, name in _LEVEL_NAMES.items()}


def level_from_name(name: str | int) -> int:
    """Resolve ``'info'``/``'debug'``/... (or a numeric level) to an int."""
    if isinstance(name, int):
        return name
    return _LEVELS_BY_NAME[name.lower()]


class StructuredLogger:
    """A named logger emitting text or JSON lines to a stream.

    ``stream=None`` means "whatever ``sys.stderr`` is at emit time", which
    keeps the logger compatible with stream-capturing test harnesses.
    """

    def __init__(
        self,
        name: str = "repro",
        level: int = WARNING,
        json_mode: bool = False,
        stream: TextIO | None = None,
    ) -> None:
        self.name = name
        self.level = level
        self.json_mode = json_mode
        self.stream = stream

    # -- emission ---------------------------------------------------------------

    def log(self, level: int, event: str, **fields: Any) -> None:
        """Emit ``event`` with ``fields`` if ``level`` clears the threshold."""
        if level < self.level:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        if self.json_mode:
            record = {"level": _LEVEL_NAMES.get(level, str(level)), "logger": self.name, "event": event}
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
        else:
            suffix = "".join(f" {key}={value}" for key, value in fields.items())
            stream.write(f"[{_LEVEL_NAMES.get(level, level)}] {self.name}: {event}{suffix}\n")

    def debug(self, event: str, **fields: Any) -> None:
        """Emit at DEBUG."""
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        """Emit at INFO."""
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Emit at WARNING."""
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        """Emit at ERROR."""
        self.log(ERROR, event, **fields)


class NullLogger(StructuredLogger):
    """Disabled logging: drops everything without formatting."""

    def __init__(self) -> None:
        super().__init__(name="null", level=ERROR + 1)

    def log(self, level: int, event: str, **fields: Any) -> None:
        pass


NULL_LOGGER = NullLogger()

_LOGGERS: dict[str, StructuredLogger] = {}
_DEFAULTS = {"level": WARNING, "json_mode": False, "stream": None}


def get_logger(name: str = "repro") -> StructuredLogger:
    """The shared logger for ``name`` (created on first use)."""
    if name not in _LOGGERS:
        _LOGGERS[name] = StructuredLogger(name, **_DEFAULTS)  # type: ignore[arg-type]
    return _LOGGERS[name]


def configure_logging(
    level: int | str | None = None,
    json_mode: bool | None = None,
    stream: TextIO | None = None,
) -> dict:
    """Reconfigure all shared loggers (existing and future).

    Only the arguments given change; the rest keep their current defaults.
    Returns the configuration in force *before* the call, suitable for
    :func:`restore_logging` — callers that flip the process-global config
    (``Telemetry.capture``) can hand the state back when they are done.
    """
    previous = logging_config()
    if level is not None:
        _DEFAULTS["level"] = level_from_name(level)
    if json_mode is not None:
        _DEFAULTS["json_mode"] = json_mode
    if stream is not None:
        _DEFAULTS["stream"] = stream
    for logger in _LOGGERS.values():
        logger.level = _DEFAULTS["level"]  # type: ignore[assignment]
        logger.json_mode = _DEFAULTS["json_mode"]  # type: ignore[assignment]
        logger.stream = _DEFAULTS["stream"]  # type: ignore[assignment]
    return previous


def logging_config() -> dict:
    """A snapshot of the current shared-logger configuration."""
    return dict(_DEFAULTS)


def restore_logging(snapshot: dict) -> None:
    """Restore a configuration captured by :func:`logging_config` (or
    returned by :func:`configure_logging`), including ``stream=None``
    ("emit-time ``sys.stderr``"), which :func:`configure_logging` alone
    cannot set back."""
    _DEFAULTS.update(snapshot)
    for logger in _LOGGERS.values():
        logger.level = _DEFAULTS["level"]  # type: ignore[assignment]
        logger.json_mode = _DEFAULTS["json_mode"]  # type: ignore[assignment]
        logger.stream = _DEFAULTS["stream"]  # type: ignore[assignment]
