"""Telemetry exporters: JSON snapshots and aligned-text renderings.

The JSON shape follows the benchmark-trajectory convention used by the
``BENCH_*.json`` files under ``benchmarks/``: a top-level ``bench`` name, a
``format`` tag, and the measurements — here the span forest plus the full
metrics registry — so a sequence of PRs can diff stage timings and funnel
counts over time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._util import format_table
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NullTracer, Span, Tracer

#: Format tag stamped into every exported snapshot.
BENCH_FORMAT = "repro-bench-v1"

#: The filter-attrition funnel, in pipeline order: (counter, description).
FUNNEL_COUNTERS: tuple[tuple[str, str], ...] = (
    ("filters.ips_considered", "measured offnet IPs entering the filters"),
    ("filters.ips_dropped_unresponsive", "dropped: fully unresponsive"),
    ("filters.ips_dropped_implausible", "dropped: implausible for one location"),
    ("filters.ips_kept", "kept after per-IP filters"),
    ("filters.ips_dropped_low_coverage_isp", "dropped: ISP below VP coverage"),
    ("filters.ips_analyzable", "analyzable (enter clustering)"),
)


def telemetry_to_json(
    telemetry: Telemetry, name: str = "study", include_values: bool = False
) -> dict[str, Any]:
    """The snapshot dict for ``telemetry`` (see module docstring for shape)."""
    return {
        "bench": name,
        "format": BENCH_FORMAT,
        "spans": [span.to_json() for span in telemetry.tracer.roots],
        **telemetry.metrics.to_json(include_values=include_values),
    }


def write_metrics_json(
    telemetry: Telemetry, path: str | Path, name: str = "study", include_values: bool = False
) -> Path:
    """Write the snapshot to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(telemetry_to_json(telemetry, name, include_values), indent=2) + "\n")
    return path


def telemetry_from_json(data: dict[str, Any]) -> Telemetry:
    """Rebuild a telemetry bundle from an exported snapshot."""
    tracer = Tracer()
    tracer.roots = [Span.from_json(entry) for entry in data.get("spans", ())]
    metrics = MetricsRegistry.from_json(data)
    return Telemetry(tracer=tracer, metrics=metrics)


# -- text renderings -------------------------------------------------------------


def render_span_tree(tracer: Tracer | NullTracer, max_children: int = 10) -> str:
    """An indented stage-time tree; large fan-outs are elided by duration."""
    if not tracer.roots:
        return "no spans recorded"
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        attrs = "".join(
            f" {key}={value}" for key, value in span.attributes.items() if key != "name"
        )
        lines.append(f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} {span.duration_ms:9.1f} ms{attrs}")
        children = sorted(span.children, key=lambda s: s.duration_s, reverse=True)
        for child in children[:max_children]:
            visit(child, depth + 1)
        if len(children) > max_children:
            rest = children[max_children:]
            rest_ms = 1000.0 * sum(s.duration_s for s in rest)
            lines.append(f"{'  ' * (depth + 1)}... (+{len(rest)} more) {rest_ms:9.1f} ms")

    for root in tracer.roots:
        visit(root, 0)
    return "\n".join(lines)


def render_metrics_table(metrics: MetricsRegistry | NullMetrics) -> str:
    """All counters, gauges, and histogram summaries as one aligned table."""
    rows: list[list[object]] = []
    for name in sorted(metrics.counters):
        rows.append([name, "counter", f"{metrics.counters[name]:g}"])
    for name in sorted(metrics.gauges):
        rows.append([name, "gauge", f"{metrics.gauges[name]:g}"])
    for name in metrics.histogram_names():
        summary = metrics.histogram(name)
        rows.append(
            [
                name,
                "histogram",
                f"n={summary.count} mean={summary.mean:.2f} p50={summary.p50:.2f} "
                f"p90={summary.p90:.2f} max={summary.maximum:.2f}",
            ]
        )
    if not rows:
        return "no metrics recorded"
    return format_table(["metric", "kind", "value"], rows)


def render_filter_funnel(metrics: MetricsRegistry | NullMetrics) -> str:
    """The Appendix-A attrition funnel as an aligned table."""
    considered = metrics.counter("filters.ips_considered")
    if not considered:
        return "no filter metrics recorded"
    rows: list[list[object]] = []
    for counter, description in FUNNEL_COUNTERS:
        value = metrics.counter(counter)
        rows.append([description, f"{value:g}", f"{100.0 * value / considered:.1f}%"])
    isp_line = (
        f"ISPs: {metrics.counter('filters.isps_considered'):g} considered, "
        f"{metrics.counter('filters.isps_dropped_low_coverage'):g} below coverage, "
        f"{metrics.counter('filters.isps_analyzable'):g} analyzable"
    )
    return format_table(["filter stage", "IPs", "% of considered"], rows) + "\n" + isp_line
