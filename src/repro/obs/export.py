"""Telemetry exporters: JSON snapshots, Chrome traces, text renderings.

The JSON shape follows the benchmark-trajectory convention used by the
``BENCH_*.json`` files under ``benchmarks/``: a top-level ``bench`` name, a
``format`` tag, and the measurements — here the span forest plus the full
metrics registry — so a sequence of PRs can diff stage timings and funnel
counts over time.  Two snapshot shapes exist:

* :func:`telemetry_to_json` — the full dump (every span, raw histogram
  values on request); the worker→parent merge wire format.
* :func:`compact_snapshot` — the committed-baseline shape
  (:data:`COMPACT_SCHEMA`): spans aggregated per stage name, histograms
  as summaries only.  A few hundred lines instead of thousands, which is
  what belongs in git and what ``repro bench check`` compares against.

:func:`write_chrome_trace` exports the span forest in the Chrome
trace-event format (complete ``"ph": "X"`` events with microsecond
timestamps), loadable in Perfetto / ``chrome://tracing``; worker-tagged
spans land on their own rows.  All file writers publish atomically
(temp file + rename) so a concurrently-tailing reader never sees a torn
snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro._util import atomic_write_text, format_table
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NullTracer, Span, Tracer

#: Format tag stamped into every exported snapshot.
BENCH_FORMAT = "repro-bench-v1"

#: Schema tag for the aggregated (committed-baseline) snapshot shape.
COMPACT_SCHEMA = "compact-aggregates-v1"

#: The filter-attrition funnel, in pipeline order: (counter, description).
FUNNEL_COUNTERS: tuple[tuple[str, str], ...] = (
    ("filters.ips_considered", "measured offnet IPs entering the filters"),
    ("filters.ips_dropped_unresponsive", "dropped: fully unresponsive"),
    ("filters.ips_dropped_implausible", "dropped: implausible for one location"),
    ("filters.ips_kept", "kept after per-IP filters"),
    ("filters.ips_dropped_low_coverage_isp", "dropped: ISP below VP coverage"),
    ("filters.ips_analyzable", "analyzable (enter clustering)"),
)


def telemetry_to_json(
    telemetry: Telemetry, name: str = "study", include_values: bool = False
) -> dict[str, Any]:
    """The snapshot dict for ``telemetry`` (see module docstring for shape)."""
    return {
        "bench": name,
        "format": BENCH_FORMAT,
        "spans": [span.to_json() for span in telemetry.tracer.roots],
        **telemetry.metrics.to_json(include_values=include_values),
    }


def write_metrics_json(
    telemetry: Telemetry, path: str | Path, name: str = "study", include_values: bool = False
) -> Path:
    """Write the snapshot to ``path`` (atomically) and return it."""
    return atomic_write_text(
        path, json.dumps(telemetry_to_json(telemetry, name, include_values), indent=2) + "\n"
    )


def telemetry_from_json(data: dict[str, Any]) -> Telemetry:
    """Rebuild a telemetry bundle from an exported snapshot."""
    tracer = Tracer()
    tracer.roots = [Span.from_json(entry) for entry in data.get("spans", ())]
    metrics = MetricsRegistry.from_json(data)
    return Telemetry(tracer=tracer, metrics=metrics)


# -- compact (committed-baseline) snapshots ---------------------------------------


def aggregate_stages(telemetry: Telemetry) -> dict[str, dict[str, Any]]:
    """Per-stage-name wall-time aggregates over the whole span forest.

    Every recorded span participates (profiled or not), keyed by span name
    in recording order: count, total/mean/max wall ms, plus summed CPU ms
    and max peak RSS when the spans were profiled.
    """
    stages: dict[str, dict[str, Any]] = {}
    for root in telemetry.tracer.roots:
        for span in root.walk():
            entry = stages.setdefault(
                span.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0, "cpu_ms": 0.0, "rss_peak_kb": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] += span.duration_ms
            entry["max_ms"] = max(entry["max_ms"], span.duration_ms)
            entry["cpu_ms"] += float(span.attributes.get("cpu_ms", 0.0))
            entry["rss_peak_kb"] = max(
                entry["rss_peak_kb"], float(span.attributes.get("rss_peak_kb", 0.0))
            )
    for entry in stages.values():
        entry["total_ms"] = round(entry["total_ms"], 3)
        entry["mean_ms"] = round(entry["total_ms"] / entry["count"], 3)
        entry["max_ms"] = round(entry["max_ms"], 3)
        entry["cpu_ms"] = round(entry["cpu_ms"], 3)
    return stages


def compact_snapshot(
    telemetry: Telemetry, name: str = "study", extra: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The aggregated snapshot: stage rollups + metric summaries, no raw dumps.

    This is the shape committed as ``BENCH_*.json`` baselines: spans fold
    into per-stage aggregates (:func:`aggregate_stages`), histograms keep
    only their summaries, and an optional ``extra`` dict (run timings,
    flight summaries) merges into the top level.
    """
    snapshot: dict[str, Any] = {
        "bench": name,
        "format": BENCH_FORMAT,
        "schema": COMPACT_SCHEMA,
        "stages": aggregate_stages(telemetry),
        **telemetry.metrics.to_json(include_values=False),
    }
    if telemetry.flight.enabled and telemetry.flight.records:
        snapshot["flight"] = telemetry.flight.to_json()
    if extra:
        snapshot.update(extra)
    return snapshot


def write_compact_snapshot(
    telemetry: Telemetry,
    path: str | Path,
    name: str = "study",
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write the compact snapshot to ``path`` (atomically) and return it."""
    return atomic_write_text(
        path, json.dumps(compact_snapshot(telemetry, name, extra), indent=2) + "\n"
    )


# -- Chrome trace-event export ----------------------------------------------------


def chrome_trace_json(telemetry: Telemetry, process_name: str = "repro") -> dict[str, Any]:
    """The span forest as a Chrome trace-event document.

    Every span becomes one complete event (``"ph": "X"``) with its start
    offset and duration in microseconds; the absolute offsets recorded by
    the tracer put parent and adopted-worker spans on one shared timeline.
    Spans tagged with a ``worker`` attribute (merged back from worker
    processes) get that worker as their ``tid``, so Perfetto renders one
    row per worker under the main thread's row.
    """
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": process_name}}
    ]

    def visit(span: Span, tid: str) -> None:
        tid = str(span.attributes.get("worker", tid))
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(1000.0 * span.start_ms, 1),
                "dur": round(1000.0 * span.duration_ms, 1),
                "pid": 1,
                "tid": tid,
                "args": {
                    key: value for key, value in span.attributes.items() if key != "worker"
                },
            }
        )
        for child in span.children:
            visit(child, tid)

    for root in telemetry.tracer.roots:
        visit(root, "main")
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry, path: str | Path, process_name: str = "repro"
) -> Path:
    """Write the Chrome trace to ``path`` (atomically) and return it."""
    return atomic_write_text(
        path, json.dumps(chrome_trace_json(telemetry, process_name), indent=1) + "\n"
    )


# -- text renderings -------------------------------------------------------------


def render_span_tree(tracer: Tracer | NullTracer, max_children: int = 10) -> str:
    """An indented stage-time tree; large fan-outs are elided by duration."""
    if not tracer.roots:
        return "no spans recorded"
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        attrs = "".join(
            f" {key}={value}" for key, value in span.attributes.items() if key != "name"
        )
        lines.append(f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} {span.duration_ms:9.1f} ms{attrs}")
        children = sorted(span.children, key=lambda s: s.duration_s, reverse=True)
        for child in children[:max_children]:
            visit(child, depth + 1)
        if len(children) > max_children:
            rest = children[max_children:]
            rest_ms = 1000.0 * sum(s.duration_s for s in rest)
            lines.append(f"{'  ' * (depth + 1)}... (+{len(rest)} more) {rest_ms:9.1f} ms")

    for root in tracer.roots:
        visit(root, 0)
    return "\n".join(lines)


def render_metrics_table(metrics: MetricsRegistry | NullMetrics) -> str:
    """All counters, gauges, and histogram summaries as one aligned table."""
    rows: list[list[object]] = []
    for name in sorted(metrics.counters):
        rows.append([name, "counter", f"{metrics.counters[name]:g}"])
    for name in sorted(metrics.gauges):
        rows.append([name, "gauge", f"{metrics.gauges[name]:g}"])
    for name in metrics.histogram_names():
        summary = metrics.histogram(name)
        rows.append(
            [
                name,
                "histogram",
                f"n={summary.count} mean={summary.mean:.2f} p50={summary.p50:.2f} "
                f"p90={summary.p90:.2f} max={summary.maximum:.2f}",
            ]
        )
    if not rows:
        return "no metrics recorded"
    return format_table(["metric", "kind", "value"], rows)


def render_filter_funnel(metrics: MetricsRegistry | NullMetrics) -> str:
    """The Appendix-A attrition funnel as an aligned table."""
    considered = metrics.counter("filters.ips_considered")
    if not considered:
        return "no filter metrics recorded"
    rows: list[list[object]] = []
    for counter, description in FUNNEL_COUNTERS:
        value = metrics.counter(counter)
        rows.append([description, f"{value:g}", f"{100.0 * value / considered:.1f}%"])
    isp_line = (
        f"ISPs: {metrics.counter('filters.isps_considered'):g} considered, "
        f"{metrics.counter('filters.isps_dropped_low_coverage'):g} below coverage, "
        f"{metrics.counter('filters.isps_analyzable'):g} analyzable"
    )
    return format_table(["filter stage", "IPs", "% of considered"], rows) + "\n" + isp_line
