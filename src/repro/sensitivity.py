"""Seed sensitivity: distribution of every headline metric across seeds.

A reproduction on a *synthetic* substrate must show its numbers are
properties of the model, not of one lucky seed.  :func:`run_sensitivity`
expands a seed axis into a :mod:`repro.sweep` campaign, runs each seed's
compact study (optionally resumable through a
:class:`~repro.store.StudyStore`, optionally parallel), and collects
each headline metric; :class:`SensitivityReport` summarises mean /
spread / range and flags metrics whose paper-shape assertion failed on
any seed.

:class:`MetricSpec` now lives in :mod:`repro.sweep.metrics` (re-exported
here unchanged) so every campaign — not just seed sensitivity — shares
the same named-observable abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import format_table, require
from repro.core.pipeline import Study, StudyConfig
from repro.parallel import ParallelConfig
from repro.store import StudyStore
from repro.sweep.grid import ParameterGrid
from repro.sweep.metrics import MetricSpec
from repro.topology.generator import InternetConfig


def _google_growth(study: Study) -> float:
    from repro.experiments.table1 import run_table1

    return run_table1(study).growth_percent("Google")


def _netflix_growth(study: Study) -> float:
    from repro.experiments.table1 import run_table1

    return run_table1(study).growth_percent("Netflix")


def _cohosting_2(study: Study) -> float:
    from repro.experiments.section32 import run_section32

    return run_section32(study).cohosting_fraction(2)


def _hosting_users(study: Study) -> float:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(study).coverage["hosting"]


def _share25_high(study: Study) -> float:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(study).share25_range()[1]


def _covid_offnet_change(study: Study) -> float:
    from repro.experiments.section41_capacity import run_covid_experiment

    return run_covid_experiment(study, sample=25).offnet_change


def _covid_interdomain_ratio(study: Study) -> float:
    from repro.experiments.section41_capacity import run_covid_experiment

    return run_covid_experiment(study, sample=25).interdomain_ratio


def _full_colocation_netflix(study: Study) -> float:
    from repro.experiments.table2 import run_table2

    return run_table2(study).full_colocation("Netflix", 0.9)


DEFAULT_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec("Google growth %", _google_growth, 17.0, 30.0, "+23.2%"),
    MetricSpec("Netflix growth %", _netflix_growth, 30.0, 45.0, "+37.4%"),
    MetricSpec("cohosting >=2 frac", _cohosting_2, 0.5, 0.95, "0.61"),
    MetricSpec("users in hosting ISPs", _hosting_users, 0.45, 0.95, "0.76"),
    MetricSpec("share>=25% users (high)", _share25_high, 0.5, 1.0, "0.71-0.82"),
    MetricSpec("COVID offnet change", _covid_offnet_change, 0.05, 0.45, "~+0.20"),
    MetricSpec("COVID interdomain ratio", _covid_interdomain_ratio, 1.8, 5.0, ">2"),
    MetricSpec("Netflix full colocation @0.9", _full_colocation_netflix, 0.4, 1.0, "0.71"),
)


@dataclass
class SensitivityReport:
    """Per-metric distributions across the seed set."""

    seeds: tuple[int, ...]
    values: dict[str, list[float]] = field(default_factory=dict)
    specs: dict[str, MetricSpec] = field(default_factory=dict)

    def mean(self, name: str) -> float:
        """Mean of one metric over seeds."""
        return float(np.mean(self.values[name]))

    def std(self, name: str) -> float:
        """Standard deviation of one metric over seeds."""
        return float(np.std(self.values[name]))

    def out_of_band(self, name: str) -> int:
        """How many seeds violated the metric's acceptance band."""
        spec = self.specs[name]
        return sum(1 for value in self.values[name] if not spec.within_band(value))

    @property
    def all_within_bands(self) -> bool:
        """Whether every metric held its shape on every seed."""
        return all(self.out_of_band(name) == 0 for name in self.values)

    def render(self) -> str:
        """Summary table across seeds."""
        headers = ["metric", "mean", "std", "min", "max", "paper", "violations"]
        rows = []
        for name, series in self.values.items():
            rows.append(
                [
                    name,
                    f"{np.mean(series):.3f}",
                    f"{np.std(series):.3f}",
                    f"{min(series):.3f}",
                    f"{max(series):.3f}",
                    self.specs[name].paper_value,
                    f"{self.out_of_band(name)}/{len(series)}",
                ]
            )
        return format_table(headers, rows)


def sensitivity_grid(
    seeds: tuple[int, ...],
    n_access_isps: int = 70,
    n_vantage_points: int = 40,
) -> ParameterGrid:
    """The seed-sensitivity campaign as a declarative grid.

    One linked axis varies the study seed and the topology seed together,
    exactly the configs the original serial loop built.
    """
    require(bool(seeds), "need at least one seed")
    base = StudyConfig(
        internet=InternetConfig(seed=seeds[0], n_access_isps=n_access_isps, n_ixps=22),
        n_vantage_points=n_vantage_points,
        seed=seeds[0],
    )
    return ParameterGrid.of(base, {"seed,internet.seed": [int(seed) for seed in seeds]})


def run_sensitivity(
    seeds: tuple[int, ...] = (11, 22, 33, 44, 55),
    n_access_isps: int = 70,
    n_vantage_points: int = 40,
    metrics: tuple[MetricSpec, ...] = DEFAULT_METRICS,
    store: StudyStore | None = None,
    parallel: ParallelConfig | None = None,
) -> SensitivityReport:
    """Run compact studies across ``seeds`` and collect ``metrics``.

    Implemented as a :func:`repro.sweep.campaign.run_campaign` over
    :func:`sensitivity_grid`: pass ``store`` to make the run durable and
    resumable (each seed checkpoints as it completes), ``parallel`` to
    fan seeds out across the process backend.  Values are identical to
    the historical serial loop.
    """
    from repro.sweep.campaign import run_campaign

    grid = sensitivity_grid(seeds, n_access_isps=n_access_isps, n_vantage_points=n_vantage_points)
    campaign = run_campaign(grid, metrics=metrics, store=store, parallel=parallel)
    report = SensitivityReport(seeds=tuple(int(seed) for seed in seeds))
    for spec in metrics:
        report.specs[spec.name] = spec
        report.values[spec.name] = campaign.series(spec.name)
    return report
