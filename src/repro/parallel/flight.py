"""The executor flight recorder: per-shard dispatch forensics.

Both execution backends log every completed shard into a
:class:`FlightRecorder` (when telemetry is captured): which worker ran it,
how long it sat queued before a worker picked it up, how long it executed,
and on which attempt it succeeded.  From those records the recorder
derives the three numbers that explain *why* a fan-out performed the way
it did:

* **per-worker utilization** — each worker's busy time over the fan-out
  makespan; a pool whose workers idle at 40% is serialization-bound, not
  compute-bound (the ROADMAP item-1 evidence);
* **queue-wait vs execute time** — per-shard, also landed as the
  ``flight.queue_wait_ms`` / ``flight.execute_ms`` histograms;
* **stragglers** — shards whose execute time exceeds ``k×`` the median
  for their stage, flagged by shard index in the report ``obs`` section
  and ``BENCH_parallel.json``.

Recording happens at harvest time in the parent process (one append per
shard, no inner-loop cost) and reads no clocks beyond the readings the
executors already took.  The :data:`NULL_FLIGHT` singleton is the
zero-cost disabled mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro._util import format_table

#: A shard is a straggler when its execute time exceeds this multiple of
#: the per-stage median.
STRAGGLER_FACTOR = 3.0

#: Stages need at least this many shards before straggler flags mean much.
MIN_SHARDS_FOR_STRAGGLERS = 4


@dataclass(frozen=True)
class ShardFlight:
    """One completed shard's dispatch record."""

    label: str
    shard: int
    worker: str
    #: Seconds between submission and a worker starting execution.
    queue_wait_s: float
    #: Seconds of actual execution on the worker.
    execute_s: float
    #: 0-based attempt that finally succeeded.
    attempt: int
    #: Start offset on the recorder's shared wall timeline, seconds.
    started_s: float
    #: Pickled size of the shard's submission (task + shard), bytes; 0 on
    #: backends that never serialize (serial, in-process fallback).
    payload_bytes: int = 0
    #: Whether the payload rode shared memory (arrays by reference) —
    #: the marker proving the zero-copy fast path engaged.
    shm: bool = False

    @property
    def finished_s(self) -> float:
        """End offset on the shared timeline, seconds."""
        return self.started_s + self.execute_s

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (times in milliseconds)."""
        return {
            "label": self.label,
            "shard": self.shard,
            "worker": self.worker,
            "queue_wait_ms": round(1000.0 * self.queue_wait_s, 3),
            "execute_ms": round(1000.0 * self.execute_s, 3),
            "attempt": self.attempt,
            "payload_bytes": self.payload_bytes,
            "shm": self.shm,
        }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class FlightRecorder:
    """Collects :class:`ShardFlight` records and derives dispatch forensics."""

    enabled = True

    def __init__(self, straggler_factor: float = STRAGGLER_FACTOR) -> None:
        self.records: list[ShardFlight] = []
        self.straggler_factor = straggler_factor
        #: Per-stage pool identity (pool id, restarts, reuse counters) —
        #: the answer to "why does a 2-worker run show 4 pids?": each
        #: ``process``-backend stage built its own ephemeral pool, while
        #: the ``pool`` backend shows one id across every stage.
        self.pools: dict[str, dict[str, Any]] = {}

    def record(
        self,
        label: str,
        shard: int,
        worker: str,
        queue_wait_s: float,
        execute_s: float,
        attempt: int = 0,
        started_s: float = 0.0,
        payload_bytes: int = 0,
        shm: bool = False,
    ) -> None:
        """Append one completed shard's record."""
        self.records.append(
            ShardFlight(
                label=label,
                shard=shard,
                worker=worker,
                queue_wait_s=max(0.0, queue_wait_s),
                execute_s=max(0.0, execute_s),
                attempt=attempt,
                started_s=started_s,
                payload_bytes=payload_bytes,
                shm=shm,
            )
        )

    def set_pool(self, label: str, info: dict[str, Any]) -> None:
        """Record which pool served stage ``label`` (identity + restarts)."""
        self.pools[label] = dict(info)

    # -- derived views ----------------------------------------------------------

    def labels(self) -> list[str]:
        """Stage labels with records, in first-seen order."""
        seen: list[str] = []
        for record in self.records:
            if record.label not in seen:
                seen.append(record.label)
        return seen

    def makespan_s(self) -> float:
        """Wall span from the first shard start to the last shard end."""
        if not self.records:
            return 0.0
        start = min(record.started_s for record in self.records)
        end = max(record.finished_s for record in self.records)
        return max(0.0, end - start)

    def worker_utilization(self) -> dict[str, dict[str, float]]:
        """Per-worker busy time, shard count, and utilization over makespan."""
        makespan = self.makespan_s()
        stats: dict[str, dict[str, float]] = {}
        for record in self.records:
            entry = stats.setdefault(record.worker, {"shards": 0, "busy_s": 0.0})
            entry["shards"] += 1
            entry["busy_s"] += record.execute_s
        for entry in stats.values():
            entry["busy_s"] = round(entry["busy_s"], 6)
            entry["utilization"] = round(entry["busy_s"] / makespan, 3) if makespan > 0 else 0.0
        return dict(sorted(stats.items()))

    def stragglers(self) -> list[ShardFlight]:
        """Shards whose execute time exceeds ``straggler_factor``× the
        per-stage median (stages with too few shards are never flagged)."""
        flagged: list[ShardFlight] = []
        for label in self.labels():
            times = [r.execute_s for r in self.records if r.label == label]
            if len(times) < MIN_SHARDS_FOR_STRAGGLERS:
                continue
            threshold = self.straggler_factor * _median(times)
            if threshold <= 0:
                continue
            flagged.extend(
                r for r in self.records if r.label == label and r.execute_s > threshold
            )
        return flagged

    def queue_wait_fraction(self) -> float:
        """Total queue-wait over total (queue-wait + execute) time."""
        waited = sum(r.queue_wait_s for r in self.records)
        busy = sum(r.execute_s for r in self.records)
        total = waited + busy
        return waited / total if total > 0 else 0.0

    # -- export -----------------------------------------------------------------

    def payload_stats(self) -> dict[str, Any]:
        """Serialization-cost rollup: total/max payload bytes, shm share."""
        measured = [r for r in self.records if r.payload_bytes > 0]
        return {
            "measured_shards": len(measured),
            "total_bytes": sum(r.payload_bytes for r in measured),
            "max_bytes": max((r.payload_bytes for r in measured), default=0),
            "shm_shards": sum(1 for r in self.records if r.shm),
        }

    def to_json(self) -> dict[str, Any]:
        """Aggregate summary (workers, stragglers, queue-wait share)."""
        stragglers = self.stragglers()
        return {
            "shards": len(self.records),
            "makespan_s": round(self.makespan_s(), 6),
            "queue_wait_fraction": round(self.queue_wait_fraction(), 3),
            "workers": self.worker_utilization(),
            "payload": self.payload_stats(),
            "pools": dict(self.pools),
            "stragglers": [record.to_json() for record in stragglers],
        }

    def render(self) -> str:
        """Per-worker utilization table plus straggler flags."""
        if not self.records:
            return "no shard flights recorded"
        rows = [
            [worker, int(stats["shards"]), f"{stats['busy_s'] * 1000:.1f}", f"{stats['utilization']:.0%}"]
            for worker, stats in self.worker_utilization().items()
        ]
        table = format_table(["worker", "shards", "busy ms", "utilization"], rows)
        lines = [
            table,
            f"queue-wait share: {self.queue_wait_fraction():.1%} of dispatch time "
            f"across {len(self.records)} shards",
        ]
        payload = self.payload_stats()
        if payload["measured_shards"]:
            lines.append(
                f"payloads: {payload['total_bytes'] / 1024:.1f} KiB total, "
                f"max {payload['max_bytes'] / 1024:.1f} KiB/shard, "
                f"{payload['shm_shards']}/{len(self.records)} shards via shared memory"
            )
        for label, info in sorted(self.pools.items()):
            if info.get("persistent"):
                lines.append(
                    f"pool {label}: {info.get('pool')} ({info.get('workers')} workers, "
                    f"{info.get('restarts', 0)} restarts, "
                    f"stage {info.get('stages_served', '?')} on this pool)"
                )
            else:
                lines.append(
                    f"pool {label}: ephemeral ({info.get('workers')} workers, "
                    f"{info.get('restarts', 0)} restarts) — a fresh pool per stage, "
                    "which is why an N-worker run can show more than N pids"
                )
        stragglers = self.stragglers()
        if stragglers:
            for record in stragglers:
                lines.append(
                    f"STRAGGLER {record.label}[{record.shard}] on {record.worker}: "
                    f"{record.execute_s * 1000:.1f} ms "
                    f"(> {self.straggler_factor:g}x stage median)"
                )
        else:
            lines.append("stragglers: none")
        return "\n".join(lines)


class NullFlightRecorder:
    """Disabled recorder: every call is a no-op."""

    enabled = False
    records: tuple = ()
    pools: dict = {}

    def record(self, *args: Any, **kwargs: Any) -> None:
        pass

    def set_pool(self, *args: Any, **kwargs: Any) -> None:
        pass

    def labels(self) -> list[str]:
        return []

    def makespan_s(self) -> float:
        return 0.0

    def worker_utilization(self) -> dict[str, dict[str, float]]:
        return {}

    def stragglers(self) -> list[ShardFlight]:
        return []

    def queue_wait_fraction(self) -> float:
        return 0.0

    def payload_stats(self) -> dict[str, Any]:
        return {"measured_shards": 0, "total_bytes": 0, "max_bytes": 0, "shm_shards": 0}

    def to_json(self) -> dict[str, Any]:
        return {
            "shards": 0,
            "makespan_s": 0.0,
            "queue_wait_fraction": 0.0,
            "workers": {},
            "payload": self.payload_stats(),
            "pools": {},
            "stragglers": [],
        }

    def render(self) -> str:
        return "no shard flights recorded"


NULL_FLIGHT = NullFlightRecorder()
