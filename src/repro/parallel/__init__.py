"""Deterministic parallel execution for the measurement pipeline.

The pipeline is embarrassingly parallel at two hot spots — the latency
campaign (one column of pings per offnet IP) and the per-ISP OPTICS
clustering at each xi — and this package fans both out without giving up
bit-reproducibility:

* :class:`ShardPlan` partitions the work units into contiguous chunks as a
  pure function of the items and a chunk size (never of the worker count);
* per-shard RNG streams are spawned from the stage's root generator in
  shard order *before* dispatch (:meth:`ShardPlan.shard_rngs` — or their
  compact wire form, :meth:`ShardPlan.shard_seeds`), so every shard sees
  the same randomness on every backend;
* :func:`run_sharded` executes the shards on the configured backend
  (:class:`SerialExecutor`, :class:`ProcessExecutor`, or the persistent
  :class:`PoolExecutor`) and merges results in shard order — dispatch is
  largest-cost-first (:func:`steal_order`) but the merge is keyed by shard
  index, so scheduling never touches bytes;
* large read-only arrays cross the process boundary by *reference* through
  :mod:`repro.parallel.shm` (``multiprocessing.shared_memory``) instead of
  being pickled per shard, with a guaranteed-unlink registry lifecycle.

Consequently a study's exported artifacts are byte-identical across
``backend="serial"``, ``backend="process"``, and ``backend="pool"`` at any
worker count — the property ``tests/test_parallel_equivalence.py`` proves
differentially.
"""

from repro.parallel.executor import (
    BACKENDS,
    DEFAULT_CAMPAIGN_CHUNK,
    DEFAULT_CLUSTERING_CHUNK,
    SHARD_DURATION_METRIC,
    Executor,
    ParallelConfig,
    PoolExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    preferred_start_method,
    process_backend_available,
    resolve_workers,
    run_sharded,
    usable_cpu_count,
)
from repro.parallel.flight import (
    NULL_FLIGHT,
    STRAGGLER_FACTOR,
    FlightRecorder,
    NullFlightRecorder,
    ShardFlight,
)
from repro.parallel.plan import Shard, ShardPlan, steal_order
from repro.parallel.pool import (
    WorkerPool,
    get_pool,
    pool_snapshot,
    shutdown_pools,
)
from repro.parallel.shm import (
    SharedArray,
    ShmRegistry,
    measure_payload,
    shared_memory_available,
    sweep_orphan_segments,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CAMPAIGN_CHUNK",
    "DEFAULT_CLUSTERING_CHUNK",
    "Executor",
    "FlightRecorder",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "ParallelConfig",
    "PoolExecutor",
    "ProcessExecutor",
    "SHARD_DURATION_METRIC",
    "STRAGGLER_FACTOR",
    "SerialExecutor",
    "Shard",
    "ShardFlight",
    "ShardPlan",
    "SharedArray",
    "ShmRegistry",
    "WorkerPool",
    "get_pool",
    "make_executor",
    "measure_payload",
    "pool_snapshot",
    "preferred_start_method",
    "process_backend_available",
    "resolve_workers",
    "run_sharded",
    "shared_memory_available",
    "shutdown_pools",
    "steal_order",
    "sweep_orphan_segments",
    "usable_cpu_count",
]
