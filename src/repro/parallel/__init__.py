"""Deterministic parallel execution for the measurement pipeline.

The pipeline is embarrassingly parallel at two hot spots — the latency
campaign (one column of pings per offnet IP) and the per-ISP OPTICS
clustering at each xi — and this package fans both out without giving up
bit-reproducibility:

* :class:`ShardPlan` partitions the work units into contiguous chunks as a
  pure function of the items and a chunk size (never of the worker count);
* per-shard RNG streams are spawned from the stage's root generator in
  shard order *before* dispatch (:meth:`ShardPlan.shard_rngs`), so every
  shard sees the same randomness on every backend;
* :func:`run_sharded` executes the shards on the configured backend
  (:class:`SerialExecutor` or :class:`ProcessExecutor`) and merges results
  in shard order.

Consequently a study's exported artifacts are byte-identical across
``backend="serial"`` and ``backend="process"`` at any worker count — the
property ``tests/test_parallel_equivalence.py`` proves differentially.
"""

from repro.parallel.executor import (
    BACKENDS,
    DEFAULT_CAMPAIGN_CHUNK,
    DEFAULT_CLUSTERING_CHUNK,
    SHARD_DURATION_METRIC,
    Executor,
    ParallelConfig,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    preferred_start_method,
    process_backend_available,
    run_sharded,
)
from repro.parallel.flight import (
    NULL_FLIGHT,
    STRAGGLER_FACTOR,
    FlightRecorder,
    NullFlightRecorder,
    ShardFlight,
)
from repro.parallel.plan import Shard, ShardPlan

__all__ = [
    "BACKENDS",
    "DEFAULT_CAMPAIGN_CHUNK",
    "DEFAULT_CLUSTERING_CHUNK",
    "Executor",
    "FlightRecorder",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "ParallelConfig",
    "ProcessExecutor",
    "SHARD_DURATION_METRIC",
    "STRAGGLER_FACTOR",
    "SerialExecutor",
    "Shard",
    "ShardFlight",
    "ShardPlan",
    "make_executor",
    "preferred_start_method",
    "process_backend_available",
    "run_sharded",
]
