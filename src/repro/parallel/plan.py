"""Deterministic work partitioning: :class:`ShardPlan` and :class:`Shard`.

A plan splits an ordered sequence of work units into contiguous chunks.
The partition is a pure function of the items and the chunk size — never
of the backend or worker count — which is what makes sharded execution
reproducible: concatenating shard results in shard order always yields the
same sequence the serial code would have produced, and per-shard RNG
streams (see :meth:`ShardPlan.shard_rngs`) depend only on the plan.

Invariants (property-tested in ``tests/test_parallel.py``):

* **exhaustive** — every item appears in exactly one shard;
* **disjoint** — no item appears in two shards;
* **order-stable** — concatenating ``shards()`` in index order reproduces
  the original item order for *any* chunk size.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._util import require, spawn_rng


@dataclass(frozen=True)
class Shard:
    """One unit of dispatch: a stable index and its slice of the work."""

    index: int
    items: tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic chunking of ``items`` into shards of ``chunk_size``."""

    items: tuple[Any, ...]
    chunk_size: int

    def __post_init__(self) -> None:
        require(self.chunk_size >= 1, "chunk_size must be >= 1")

    @classmethod
    def of(cls, items: Iterable[Any] | Sequence[Any], chunk_size: int) -> "ShardPlan":
        """Build a plan over ``items`` (materialised in iteration order)."""
        return cls(items=tuple(items), chunk_size=int(chunk_size))

    @property
    def n_items(self) -> int:
        """Total number of work units."""
        return len(self.items)

    @property
    def n_shards(self) -> int:
        """Number of shards (0 for an empty plan)."""
        return math.ceil(len(self.items) / self.chunk_size)

    def shards(self) -> list[Shard]:
        """The contiguous chunks, in index order."""
        return [
            Shard(index=i, items=self.items[i * self.chunk_size : (i + 1) * self.chunk_size])
            for i in range(self.n_shards)
        ]

    def shard_rngs(self, root: np.random.Generator, label: str) -> tuple[np.random.Generator, ...]:
        """One independent child generator per shard, derived from ``root``.

        Streams are spawned in shard order *before* any dispatch, so they are
        identical no matter which backend or worker count later consumes the
        shards.  ``label`` namespaces the streams per stage (two stages
        sharing a root still get independent streams).
        """
        return tuple(spawn_rng(root, f"{label}.shard-{i}") for i in range(self.n_shards))
