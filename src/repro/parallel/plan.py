"""Deterministic work partitioning: :class:`ShardPlan` and :class:`Shard`.

A plan splits an ordered sequence of work units into contiguous chunks.
The partition is a pure function of the items and the chunk size — never
of the backend or worker count — which is what makes sharded execution
reproducible: concatenating shard results in shard order always yields the
same sequence the serial code would have produced, and per-shard RNG
streams (see :meth:`ShardPlan.shard_rngs`) depend only on the plan.

Invariants (property-tested in ``tests/test_parallel.py``):

* **exhaustive** — every item appears in exactly one shard;
* **disjoint** — no item appears in two shards;
* **order-stable** — concatenating ``shards()`` in index order reproduces
  the original item order for *any* chunk size.

Shards optionally carry a **cost estimate** (``ShardPlan.of(...,
costs=...)``, summed per chunk): the process backends *dispatch*
largest-cost-first (:func:`steal_order`, classic LPT scheduling) so one
oversized ISP doesn't straggle the whole stage, while results are still
*merged* in shard-index order — dispatch order is an execution detail and
provably cannot change artifact bytes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro._util import require, spawn_rng


@dataclass(frozen=True)
class Shard:
    """One unit of dispatch: a stable index and its slice of the work."""

    index: int
    items: tuple[Any, ...]
    #: Estimated execution cost (work-stealing dispatch key); defaults to
    #: the item count.  Never consulted for partitioning or merging.
    cost: float | None = field(default=None, compare=False)
    #: Optional per-shard payload attached by :func:`~repro.parallel.run_sharded`
    #: (e.g. a compact RNG seed), available to the task as ``shard.payload``.
    payload: Any = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def cost_estimate(self) -> float:
        """The dispatch-ordering key: explicit cost, else the item count."""
        return float(len(self.items)) if self.cost is None else self.cost


def steal_order(shards: Sequence[Shard]) -> list[Shard]:
    """Shards in dispatch order: largest estimated cost first, index-stable.

    The work-stealing queue discipline of the process backends: big shards
    enter the pool first so their tails overlap the small shards' work
    instead of starting last and straggling.  Ties (and the default
    all-equal costs) preserve index order, so plans without estimates
    dispatch exactly as before.  Purely an execution-order choice — the
    executors still key results by ``shard.index``.
    """
    return sorted(shards, key=lambda shard: (-shard.cost_estimate, shard.index))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic chunking of ``items`` into shards of ``chunk_size``."""

    items: tuple[Any, ...]
    chunk_size: int
    #: Optional per-item cost estimates (same length as ``items``); each
    #: shard's cost is the sum over its slice.  Purely advisory: costs
    #: shape dispatch order, never the partition or the RNG streams.
    costs: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        require(self.chunk_size >= 1, "chunk_size must be >= 1")
        if self.costs is not None:
            require(
                len(self.costs) == len(self.items),
                f"costs length {len(self.costs)} != items length {len(self.items)}",
            )

    @classmethod
    def of(
        cls,
        items: Iterable[Any] | Sequence[Any],
        chunk_size: int,
        costs: Iterable[float] | None = None,
    ) -> "ShardPlan":
        """Build a plan over ``items`` (materialised in iteration order)."""
        return cls(
            items=tuple(items),
            chunk_size=int(chunk_size),
            costs=None if costs is None else tuple(float(c) for c in costs),
        )

    @property
    def n_items(self) -> int:
        """Total number of work units."""
        return len(self.items)

    @property
    def n_shards(self) -> int:
        """Number of shards (0 for an empty plan)."""
        return math.ceil(len(self.items) / self.chunk_size)

    def shards(self) -> list[Shard]:
        """The contiguous chunks, in index order."""
        return [
            Shard(
                index=i,
                items=self.items[i * self.chunk_size : (i + 1) * self.chunk_size],
                cost=(
                    None
                    if self.costs is None
                    else float(sum(self.costs[i * self.chunk_size : (i + 1) * self.chunk_size]))
                ),
            )
            for i in range(self.n_shards)
        ]

    def shard_rngs(self, root: np.random.Generator, label: str) -> tuple[np.random.Generator, ...]:
        """One independent child generator per shard, derived from ``root``.

        Streams are spawned in shard order *before* any dispatch, so they are
        identical no matter which backend or worker count later consumes the
        shards.  ``label`` namespaces the streams per stage (two stages
        sharing a root still get independent streams).
        """
        return tuple(spawn_rng(root, f"{label}.shard-{i}") for i in range(self.n_shards))

    def shard_seeds(self, root: np.random.Generator, label: str) -> tuple[tuple[int, ...], ...]:
        """Compact seed material for each shard's RNG stream.

        ``np.random.default_rng(seed)`` over one of these tuples yields the
        *same generator* :meth:`shard_rngs` would have returned (both fold
        the label into the entropy the way :func:`repro._util.spawn_rng`
        does, drawing from ``root`` once per shard in shard order).  A seed
        tuple pickles in tens of bytes where a generator costs hundreds —
        and, critically, a shard task can carry *its own* seed instead of
        the whole stage's generator tuple, keeping submissions O(1).
        """
        seeds = []
        for i in range(self.n_shards):
            label_entropy = tuple(ord(ch) for ch in f"{label}.shard-{i}")
            seed_material = int(root.integers(0, 2**63 - 1))
            seeds.append((seed_material, *label_entropy))
        return tuple(seeds)
