"""Zero-copy shard payloads: numpy arrays over POSIX shared memory.

The process backends used to re-pickle every heavy array (the VP×IP
latency matrix, the campaign's base-RTT matrix) into every shard
submission — BENCH_parallel.json measured the result: 0.38× *slower*
than serial at 4 workers, queue-wait fraction 0.42.  This module makes
those payloads reference-shaped instead of value-shaped:

* :class:`SharedArray` wraps a read-only numpy array.  When it is backed
  by a :mod:`multiprocessing.shared_memory` segment it pickles as
  ``(name, shape, dtype)`` — ~100 bytes no matter how large the matrix —
  and unpickling in a worker attaches a read-only view onto the same
  physical pages (cached per process, so repeated shards pay one
  ``shm_open`` + ``mmap`` total).  When shared memory is unavailable
  (restricted sandboxes) it degrades to carrying the array by value:
  exactly the old pickle path, bit-identical results either way.

* :class:`ShmRegistry` owns every segment a stage exports and
  **guarantees unlink**: it is a context manager, closing is idempotent,
  and every live registry is swept at interpreter exit.  Parent-side
  views keep working after ``unlink`` (POSIX keeps the pages while any
  mapping is open), so the registry can be scoped tightly to a fan-out.

* :func:`sweep_orphan_segments` removes name-prefixed segments whose
  creating process is dead — the backstop for SIGKILLed parents and
  crashed workers, run by the process backends on executor startup and
  regression-tested in ``tests/test_parallel.py``.

Segment names are ``repro_shm_<pid>_<counter>`` so ownership is readable
straight out of ``/dev/shm`` and the orphan sweep can decide liveness
without attaching.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any

import numpy as np

#: Every segment this module creates starts with this prefix.
SHM_PREFIX = "repro_shm"

#: Monotonic per-process counter making segment names unique.
_COUNTER = itertools.count()

#: Worker-side attachment cache: segment name -> (SharedMemory, ndarray).
_ATTACHMENTS: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Keep at most this many cached attachments per worker process.
_ATTACHMENT_CACHE_SIZE = 8

#: Thread-local marker set by :meth:`SharedArray.__reduce__` so
#: :func:`measure_payload` can tell whether a pickle went through shm.
_PICKLE_MARKS = threading.local()

_AVAILABLE: bool | None = None


def shared_memory_available() -> bool:
    """Whether this host can create shared-memory segments (probed once).

    Restricted sandboxes may lack ``/dev/shm`` or forbid ``shm_open``;
    callers fall back to by-value payloads there.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(
                create=True, size=8, name=f"{SHM_PREFIX}_{os.getpid()}_probe{next(_COUNTER)}"
            )
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def _attach(name: str, shape: tuple[int, ...], dtype: str) -> np.ndarray:
    """Attach a read-only view onto segment ``name`` (cached per process)."""
    cached = _ATTACHMENTS.get(name)
    if cached is None:
        segment = shared_memory.SharedMemory(name=name)
        # No resource-tracker gymnastics here: every attacher is a child
        # of the creating process, so the whole tree shares one tracker
        # whose cache is a set — the attach-side register is a no-op and
        # the creator's ``unlink`` retires the entry exactly once.
        # (Worker-side ``unregister`` would poison that shared cache and
        # make the creator's unlink warn.)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        view.flags.writeable = False
        while len(_ATTACHMENTS) >= _ATTACHMENT_CACHE_SIZE:
            old_name, (old_segment, _old_view) = next(iter(_ATTACHMENTS.items()))
            del _ATTACHMENTS[old_name]
            try:
                old_segment.close()
            except Exception:
                pass
        _ATTACHMENTS[name] = cached = (segment, view)
    _segment, view = cached
    if view.shape != tuple(shape) or view.dtype != np.dtype(dtype):
        raise ValueError(
            f"shared segment {name!r} holds {view.dtype}{view.shape}, "
            f"caller expected {dtype}{tuple(shape)}"
        )
    return view


def _rebuild_shared(name: str, shape: tuple[int, ...], dtype: str) -> "SharedArray":
    array = _attach(name, shape, dtype)
    return SharedArray(array, name=name)


def _rebuild_inline(array: np.ndarray) -> "SharedArray":
    return SharedArray(array)


class SharedArray:
    """A read-only numpy array that pickles by reference when shm-backed.

    Parent side these are built by :meth:`ShmRegistry.share`; worker side
    they materialise by unpickling.  ``.array`` is always a plain ndarray
    with the exact bytes of the original, so consumers never branch on
    the transport.
    """

    __slots__ = ("_array", "name")

    def __init__(self, array: np.ndarray, name: str | None = None) -> None:
        self._array = array
        #: Segment name when shm-backed, None for by-value payloads.
        self.name = name

    @property
    def array(self) -> np.ndarray:
        """The wrapped array (zero-copy view in shm-backed workers)."""
        return self._array

    @property
    def shm_backed(self) -> bool:
        """Whether pickling this array costs a name instead of the bytes."""
        return self.name is not None

    def __reduce__(self):
        marks = getattr(_PICKLE_MARKS, "stack", None)
        if marks:
            marks[-1] = marks[-1] or self.shm_backed
        if self.name is not None:
            return (_rebuild_shared, (self.name, self._array.shape, self._array.dtype.str))
        return (_rebuild_inline, (self._array,))


#: Live registries, swept at interpreter exit as the unlink guarantee of
#: last resort (normal paths close via context manager / explicit close).
_LIVE_REGISTRIES: "weakref.WeakSet[ShmRegistry]" = weakref.WeakSet()


class ShmRegistry:
    """Owns shared segments for one fan-out; context-managed unlink.

    ``enabled=False`` (serial backend, or hosts without shared memory)
    makes :meth:`share` wrap arrays by value — same API, no segments, so
    call sites never branch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled and shared_memory_available()
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        if self.enabled:
            _LIVE_REGISTRIES.add(self)

    def share(self, array: np.ndarray | None) -> SharedArray | None:
        """Export ``array`` (C-contiguous copy) into a shared segment.

        ``None`` passes through (optional payload fields); when disabled
        the array rides by value.
        """
        if array is None:
            return None
        arr = np.ascontiguousarray(array)
        if not self.enabled:
            return SharedArray(arr)
        name = f"{SHM_PREFIX}_{os.getpid()}_{next(_COUNTER)}"
        segment = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes), name=name)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        view.flags.writeable = False
        self._segments.append(segment)
        return SharedArray(view, name=name)

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except Exception:
                pass
        self._segments.clear()
        _LIVE_REGISTRIES.discard(self)

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - backstop only
        self.close()


@atexit.register
def _sweep_live_registries() -> None:  # pragma: no cover - exit path
    for registry in list(_LIVE_REGISTRIES):
        registry.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def sweep_orphan_segments() -> int:
    """Unlink ``repro_shm_*`` segments whose creating process is dead.

    The guaranteed-unlink lifecycle covers every orderly exit; this sweep
    covers the rest — a SIGKILLed parent, an OOM-killed worker holding a
    registry.  Runs on process-backend executor startup; returns how many
    segments were removed.  Linux-only by construction (``/dev/shm``);
    other platforms return 0 and rely on their own named-segment reaping.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return 0
    removed = 0
    for entry in os.listdir(shm_dir):
        if not entry.startswith(SHM_PREFIX + "_"):
            continue
        parts = entry[len(SHM_PREFIX) + 1 :].split("_", 1)
        try:
            pid = int(parts[0])
        except (ValueError, IndexError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
            removed += 1
        except OSError:
            continue
    return removed


def measure_payload(obj: Any) -> tuple[int, bool]:
    """``(pickled_bytes, used_shm)`` for a task or shard payload.

    Used by the flight recorder to make serialization cost visible:
    ``used_shm`` is True when any :class:`SharedArray` in ``obj`` pickled
    by reference.  Costs one pickle pass, so callers only measure when
    telemetry is being captured.
    """
    stack = getattr(_PICKLE_MARKS, "stack", None)
    if stack is None:
        stack = _PICKLE_MARKS.stack = []
    stack.append(False)
    try:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        used_shm = stack.pop()
    return len(data), used_shm
