"""The persistent worker pool: one supervised pool, many stages.

The ``process`` backend builds a fresh :class:`ProcessPoolExecutor` per
fan-out, so a study pays spawn + import warmup twice (campaign, then
clustering) and a sweep or timeline campaign pays it per cell stage —
the flight snapshot in BENCH_parallel.json showed 4 distinct pids for a
2-worker run for exactly this reason.  The ``pool`` backend instead
leases a process-wide :class:`WorkerPool` keyed by worker count:

* the first stage to ask for ``N`` workers creates the pool; every later
  stage (and, under ``repro serve``, every later *campaign*) reuses it;
* a broken or hung pool is **rebuilt in place** — same handle, fresh
  processes, ``restarts`` incremented — so the resilience layer's
  requeue/fallback protocol works unchanged against it;
* :func:`shutdown_pools` tears everything down (registered at interpreter
  exit; the serve scheduler also calls it on drain).

The handle exposes identity (``pool_id``), ``restarts`` and
``stages_served`` so the flight recorder can show pool reuse instead of
leaving an N-workers/2N-pids puzzle in the bench snapshot.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

import multiprocessing

_COUNTER = itertools.count()

_LOCK = threading.Lock()

#: Live pools, keyed by worker count.
_POOLS: dict[int, "WorkerPool"] = {}


class WorkerPool:
    """A reusable, rebuildable :class:`ProcessPoolExecutor` lease."""

    def __init__(self, workers: int, start_method: str) -> None:
        self.workers = workers
        self.start_method = start_method
        self.pool_id = f"pool-{os.getpid()}-{next(_COUNTER)}"
        #: How many times a broken/hung pool was replaced with fresh
        #: processes over this handle's lifetime.
        self.restarts = 0
        #: How many fan-outs have leased this handle.
        self.stages_served = 0
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            context = multiprocessing.get_context(self.start_method)
            self._executor = ProcessPoolExecutor(max_workers=self.workers, mp_context=context)
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Submit one task to the live pool (created lazily)."""
        return self._ensure().submit(fn, *args, **kwargs)

    def rebuild(self) -> None:
        """Replace a poisoned pool with fresh processes, in place.

        The old executor is abandoned without waiting (its workers are
        dead or hung); in-flight futures were already failed or will be
        cancelled.  The handle keeps its identity so callers see the
        restart in ``restarts`` rather than a brand-new pool.
        """
        old = self._executor
        self._executor = None
        self.restarts += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Terminate the pool's workers (the handle can be re-leased)."""
        old = self._executor
        self._executor = None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def info(self) -> dict[str, Any]:
        """Identity snapshot for the flight recorder / bench trajectory."""
        return {
            "pool": self.pool_id,
            "workers": self.workers,
            "restarts": self.restarts,
            "stages_served": self.stages_served,
            "persistent": True,
        }


def get_pool(workers: int, start_method: str) -> WorkerPool:
    """Lease the process-wide pool for ``workers`` (created on first use).

    Keyed by worker count so heterogeneous configs coexist; a config that
    always asks for the same ``--workers`` always lands on one pool.
    """
    with _LOCK:
        pool = _POOLS.get(workers)
        if pool is None or pool.start_method != start_method:
            pool = WorkerPool(workers, start_method)
            _POOLS[workers] = pool
        pool.stages_served += 1
        return pool


def pool_snapshot() -> list[dict[str, Any]]:
    """Every live pool's :meth:`~WorkerPool.info` (observability surface)."""
    with _LOCK:
        return [pool.info() for _workers, pool in sorted(_POOLS.items())]


def shutdown_pools() -> None:
    """Shut down and forget every persistent pool (idempotent).

    Called at interpreter exit, by the serve scheduler on drain, and by
    tests that need a cold pool.
    """
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)
