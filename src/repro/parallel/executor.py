"""Execution backends: run a shard task serially, on processes, or on a pool.

A *shard task* is a picklable callable ``task(shard, telemetry) -> result``.
All backends return results **in shard-index order**, so a sharded stage is
a drop-in replacement for its serial loop: determinism comes from the
:class:`~repro.parallel.plan.ShardPlan` (partition and RNG streams fixed
before dispatch), not from execution order.  Dispatch order is a free
variable the process backends exploit: shards enter the pool
largest-estimated-cost-first (:func:`~repro.parallel.plan.steal_order`) so
uneven shards cannot straggle a stage, while the ordered merge keeps the
result list — and therefore every artifact byte — identical.

Three backends:

* ``serial`` — in-process, in order; the reference implementation.
* ``process`` — a fresh supervised :class:`ProcessPoolExecutor` per
  fan-out (spawn + import warmup paid per stage).
* ``pool`` — the same supervision over a **persistent** process-wide
  :class:`~repro.parallel.pool.WorkerPool`, reused across stages,
  campaign cells, and (under ``repro serve``) whole campaigns, so warmup
  is paid once per process instead of once per stage.

Telemetry crosses the process boundary by value: each worker records into a
fresh private bundle, returns its snapshot alongside the shard result, and
the parent merges snapshots back — counters add, histogram observations
extend, and the worker's span forest is adopted under the stage's fan-out
span, in shard order.  Nothing is recorded twice: in process mode the
parent records only the fan-out span and the merge, never the per-shard
work the workers already accounted for.  When telemetry is captured the
parent also measures each submission's pickled size (and whether it rode
shared memory, :mod:`repro.parallel.shm`) into the flight recorder, making
serialization cost a first-class observable.

All backends are *supervised* when given a
:class:`~repro.resilience.ResilienceConfig` and/or a
:class:`~repro.faults.FaultPlan`:

* a shard that fails with a retryable error (transient injected fault,
  dead worker, broken pool, per-shard timeout) is retried/requeued up to
  the policy's attempt limit;
* the process backends detect dead workers (``BrokenProcessPool``) and
  hung workers (``ParallelConfig.shard_timeout_s``), replace the
  poisoned pool (the persistent pool is rebuilt in place, keeping its
  identity and counting the restart), re-dispatch the survivors, and run
  a shard whose pool attempts are exhausted *in-process* before
  quarantining it;
* a quarantined shard yields a :class:`~repro.resilience.ShardLoss`
  sentinel in the result list, and :func:`run_sharded` aborts with
  :class:`~repro.resilience.ShardQuarantinedError` if the losses exceed
  the stage's :class:`~repro.resilience.ErrorBudget`.

With no faults and no resilience config (the default), every supervised
code path collapses to the plain fast path — fault injection is zero-cost
when disabled.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Sequence

from repro._util import require
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    WorkerCrashError,
    raise_injected,
)
from repro.obs import MetricsRegistry, Telemetry, ensure_telemetry
from repro.obs.export import telemetry_to_json
from repro.obs.logging import NULL_LOGGER
from repro.obs.trace import Span, Tracer, shift_spans
from repro.resilience import (
    ErrorBudget,
    ResilienceConfig,
    ShardLoss,
    ShardQuarantinedError,
    ShardTimeoutError,
    is_retryable,
    jitter_rng,
)

from repro.parallel.plan import Shard, ShardPlan, steal_order
from repro.parallel.pool import WorkerPool, get_pool
from repro.parallel.shm import measure_payload, sweep_orphan_segments

#: Recognised backend names, in preference order.
BACKENDS = ("serial", "process", "pool")

#: Shard-duration histogram shared by every sharded stage.
SHARD_DURATION_METRIC = "parallel.shard_duration_ms"

#: Default work units per shard for the latency campaign (offnet IPs).
DEFAULT_CAMPAIGN_CHUNK = 64

#: Default work units per shard for clustering ((isp_asn, xi) pairs).
DEFAULT_CLUSTERING_CHUNK = 4

ShardTask = Callable[[Shard, Telemetry | None], Any]


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | str) -> int:
    """Resolve a worker-count spec: ``"auto"`` → ``max(1, cpus - 1)``.

    One core is left for the parent (merge, supervision, telemetry);
    integers (and integer strings) pass through unchanged.
    """
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, usable_cpu_count() - 1)
        require(workers.isdigit(), f"workers must be a positive integer or 'auto', got {workers!r}")
        return int(workers)
    return workers


@dataclass(frozen=True)
class ParallelConfig:
    """How sharded pipeline stages execute.

    Chunk sizes shape the :class:`ShardPlan` and therefore the artifacts'
    RNG stream layout; ``backend``, ``workers``, and ``shard_timeout_s``
    only decide *where* shards run and how long a worker may hold one, so
    changing them never changes results.  ``workers`` accepts ``"auto"``
    (resolved to ``max(1, cpus - 1)`` at construction, so telemetry and
    bench snapshots always see the concrete count).
    """

    backend: str = "serial"
    workers: int | str = 1
    #: Offnet IPs per campaign shard.
    campaign_chunk: int = DEFAULT_CAMPAIGN_CHUNK
    #: (isp_asn, xi) pairs per clustering shard.  The pipeline emits pairs
    #: ISP-major, so any multiple of ``len(xis)`` keeps each ISP's xi
    #: settings in one shard and lets its distance matrix / OPTICS ordering
    #: be memoized (other values stay correct, just without the reuse).
    clustering_chunk: int = DEFAULT_CLUSTERING_CHUNK
    #: Per-shard execution timeout; ``None`` (default) never times out.
    #: On the process backends a shard past its deadline is treated as a
    #: hung worker; retry/fallback behaviour then follows the stage's
    #: :class:`~repro.resilience.ResilienceConfig` (or the timeout error
    #: propagates when none is configured).
    shard_timeout_s: float | None = None

    def __post_init__(self) -> None:
        require(self.backend in BACKENDS, f"backend must be one of {BACKENDS}, got {self.backend!r}")
        object.__setattr__(self, "workers", resolve_workers(self.workers))
        require(self.workers >= 1, "workers must be >= 1")
        require(self.campaign_chunk >= 1, "campaign_chunk must be >= 1")
        require(self.clustering_chunk >= 1, "clustering_chunk must be >= 1")
        if self.shard_timeout_s is not None:
            require(self.shard_timeout_s > 0, "shard_timeout_s must be > 0 (or None)")


def _shard_sites(label: str) -> tuple[str, str]:
    """Site aliases a shard fault can be addressed by."""
    return ("parallel.shard", f"{label}.shard")


def _trip_local_fault(
    faults: FaultPlan | None,
    label: str,
    shard_index: int,
    attempt: int,
    shard_timeout_s: float | None,
) -> None:
    """Apply a shard-site fault in the parent process (serial/fallback path).

    Crashes become :class:`WorkerCrashError` (the serial emulation of a
    dead worker) and hangs become :class:`ShardTimeoutError` when a
    timeout would have caught them, so serial and process backends make
    identical retry decisions from the same plan.
    """
    if faults is None:
        return
    spec = faults.decide_any(_shard_sites(label), shard_index, attempt)
    if spec is None:
        return
    if spec.kind == "error":
        raise_injected(spec, spec.site, shard_index)
    elif spec.kind == "crash":
        raise WorkerCrashError(f"injected worker crash at shard {shard_index}")
    elif spec.kind == "hang":
        if shard_timeout_s is not None and spec.hang_s > shard_timeout_s:
            raise ShardTimeoutError(
                f"shard {shard_index} exceeded its {shard_timeout_s}s timeout (injected hang)"
            )
        time.sleep(spec.hang_s)


def _trip_worker_fault(faults: FaultPlan | None, label: str, shard_index: int, attempt: int) -> None:
    """Apply a shard-site fault inside a worker process (the real thing)."""
    if faults is None:
        return
    spec = faults.decide_any(_shard_sites(label), shard_index, attempt)
    if spec is None:
        return
    if spec.kind == "error":
        raise_injected(spec, spec.site, shard_index)
    elif spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif spec.kind == "hang":
        time.sleep(spec.hang_s)


class SerialExecutor:
    """Runs shards in-process, in order; the reference backend.

    With a resilience config, a shard whose attempts are exhausted is
    quarantined into a :class:`ShardLoss` instead of aborting the stage.
    """

    name = "serial"

    def __init__(
        self,
        faults: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        shard_timeout_s: float | None = None,
    ) -> None:
        self.faults = faults
        self.resilience = resilience
        self.shard_timeout_s = shard_timeout_s

    def map_shards(
        self, task: ShardTask, shards: list[Shard], telemetry: Telemetry | None, label: str
    ) -> list[Any]:
        obs = ensure_telemetry(telemetry)
        results: list[Any] = []
        for shard in shards:
            results.append(self._run_one(task, shard, telemetry, obs, label))
            obs.progress(label, len(results), len(shards))
            obs.heartbeat(label=label)
        return results

    def _run_one(
        self, task: ShardTask, shard: Shard, telemetry: Telemetry | None, obs: Telemetry, label: str
    ) -> Any:
        policy = self.resilience.retry if self.resilience is not None else None
        attempt = 0
        while True:
            try:
                _trip_local_fault(self.faults, label, shard.index, attempt, self.shard_timeout_s)
                with obs.span(f"{label}.shard", shard=shard.index, n_items=len(shard)) as span:
                    value = task(shard, telemetry)
                obs.observe(SHARD_DURATION_METRIC, span.duration_ms)
                _record_flight(
                    obs, label, shard.index, "serial", 0.0, span.duration_s, attempt, span.start_s
                )
                return value
            except Exception as error:  # noqa: BLE001 — classified below
                if policy is not None and is_retryable(error) and policy.retries_left(attempt):
                    obs.count("resilience.retries")
                    delay = policy.delay_s(attempt, jitter_rng(label, shard.index))
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                if self.resilience is not None:
                    obs.count("resilience.quarantined_shards")
                    return ShardLoss(
                        index=shard.index,
                        error=f"{type(error).__name__}: {error}",
                        attempts=attempt + 1,
                    )
                raise


class ProcessExecutor:
    """Runs shards on a supervised :class:`ProcessPoolExecutor`.

    Supervision is a polling loop over in-flight futures: completed
    shards are harvested in completion order (results re-ordered by
    shard index at the end), a broken pool or a shard past its deadline
    replaces the pool and re-dispatches the survivors, and exhausted
    shards fall back to in-process execution before quarantine.

    The pool itself is ephemeral — built on stage entry, torn down on
    stage exit.  :class:`PoolExecutor` reuses this entire supervision
    loop over a persistent pool by overriding the three ``_lease`` /
    ``_recycle`` / ``_release`` hooks.
    """

    name = "process"

    #: Poll interval while any shard has a deadline to watch.
    _POLL_S = 0.05

    #: Poll interval while an event stream wants heartbeats (no deadline).
    _HEARTBEAT_POLL_S = 1.0

    def __init__(
        self,
        workers: int,
        faults: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        shard_timeout_s: float | None = None,
    ) -> None:
        require(workers >= 1, "workers must be >= 1")
        self.workers = workers
        self.faults = faults
        self.resilience = resilience
        self.shard_timeout_s = shard_timeout_s

    # -- pool lifecycle hooks (overridden by PoolExecutor) ----------------------

    def _lease(self, window: int, start_method: str) -> Any:
        """Acquire the pool this stage submits to."""
        context = multiprocessing.get_context(start_method)
        return ProcessPoolExecutor(max_workers=window, mp_context=context)

    def _recycle(self, pool: Any, window: int, start_method: str) -> Any:
        """Replace a broken/hung pool with a fresh one."""
        pool.shutdown(wait=False, cancel_futures=True)
        return self._lease(window, start_method)

    def _release(self, pool: Any) -> None:
        """Give the pool back at stage exit."""
        pool.shutdown(wait=False, cancel_futures=True)

    def _pool_info(self, pool: Any, window: int, restarts: int) -> dict[str, Any]:
        """Flight-recorder identity for the pool this stage used."""
        return {"pool": "ephemeral", "workers": window, "restarts": restarts, "persistent": False}

    # -- the supervision loop ---------------------------------------------------

    def map_shards(
        self, task: ShardTask, shards: list[Shard], telemetry: Telemetry | None, label: str
    ) -> list[Any]:
        capture = telemetry is not None and telemetry.enabled
        obs = ensure_telemetry(telemetry)
        # Backstop for SIGKILLed predecessors: reap shared-memory segments
        # whose creating process is gone before exporting our own.
        sweep_orphan_segments()
        start_method = preferred_start_method()
        window = min(self.workers, len(shards))
        results: dict[int, Any] = {}
        snapshots: dict[int, tuple[dict[str, Any], float, int, tuple[int, bool]]] = {}
        # Work-stealing discipline: dispatch largest-estimated-cost-first
        # so uneven shards overlap instead of straggling; the merge below
        # is keyed by shard.index, so dispatch order cannot change bytes.
        queue: deque[tuple[Shard, int]] = deque((shard, 0) for shard in steal_order(shards))
        active: dict[Future, tuple[Shard, int, float | None, float, tuple[int, bool]]] = {}
        restarts = 0
        task_payload = measure_payload(task) if capture else (0, False)
        pool = self._lease(window, start_method)
        try:
            while queue or active:
                while queue and len(active) < window:
                    shard, attempt = queue.popleft()
                    future = pool.submit(
                        _invoke_shard, task, shard, label, capture, self.faults, attempt
                    )
                    deadline = (
                        time.monotonic() + self.shard_timeout_s
                        if self.shard_timeout_s is not None
                        else None
                    )
                    if capture:
                        shard_bytes, shard_shm = measure_payload(shard)
                        payload = (task_payload[0] + shard_bytes, task_payload[1] or shard_shm)
                    else:
                        payload = (0, False)
                    # Submission wall time feeds the flight recorder's
                    # queue-wait (worker start wall − submit wall).
                    active[future] = (
                        shard,
                        attempt,
                        deadline,
                        time.time() if capture else 0.0,
                        payload,
                    )
                if self.shard_timeout_s is not None:
                    poll: float | None = self._POLL_S
                elif obs.stream.enabled:
                    poll = self._HEARTBEAT_POLL_S
                else:
                    poll = None
                done, _pending = wait(list(active), timeout=poll, return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    shard, attempt, _deadline, submit_wall, payload = active.pop(future)
                    try:
                        value, snapshot = future.result()
                    except BrokenProcessPool as error:
                        pool_broken = True
                        self._dispose(task, shard, attempt, error, queue, results, telemetry, obs, label)
                    except Exception as error:  # noqa: BLE001 — classified in _dispose
                        self._dispose(task, shard, attempt, error, queue, results, telemetry, obs, label)
                    else:
                        results[shard.index] = value
                        if snapshot is not None:
                            snapshots[shard.index] = (snapshot, submit_wall, attempt, payload)
                if done:
                    obs.progress(label, len(results), len(shards))
                obs.heartbeat(label=label, in_flight=len(active))
                now = time.monotonic()
                hung = {
                    future
                    for future, (_shard, _attempt, deadline, _submit, _payload) in active.items()
                    if deadline is not None and now > deadline
                }
                if pool_broken or hung:
                    # A broken pool has already failed every in-flight
                    # future; a hung worker permanently occupies a slot.
                    # Either way this pool is unusable: replace it and
                    # re-dispatch the survivors on the fresh one.
                    if pool_broken:
                        obs.count("resilience.worker_crashes")
                    obs.count("resilience.timeouts", len(hung))
                    survivors = list(active.items())
                    active.clear()
                    restarts += 1
                    pool = self._recycle(pool, window, start_method)
                    for future, (shard, attempt, _deadline, _submit, _payload) in survivors:
                        if future in hung:
                            error: Exception = ShardTimeoutError(
                                f"shard {shard.index} exceeded its {self.shard_timeout_s}s timeout"
                            )
                        else:
                            error = WorkerCrashError("worker pool torn down mid-shard")
                        self._dispose(task, shard, attempt, error, queue, results, telemetry, obs, label)
        finally:
            self._release(pool)
        if capture and telemetry is not None:
            telemetry.flight.set_pool(label, self._pool_info(pool, window, restarts))
            for shard in shards:
                entry = snapshots.get(shard.index)
                if entry is not None:
                    snapshot, submit_wall, attempt, payload = entry
                    _merge_worker_snapshot(
                        telemetry,
                        snapshot,
                        label=label,
                        shard_index=shard.index,
                        submit_wall=submit_wall,
                        attempt=attempt,
                        payload=payload,
                    )
        return [results[shard.index] for shard in shards]

    def _dispose(
        self,
        task: ShardTask,
        shard: Shard,
        attempt: int,
        error: Exception,
        queue: deque,
        results: dict[int, Any],
        telemetry: Telemetry | None,
        obs: Telemetry,
        label: str,
    ) -> None:
        """Decide a failed shard attempt's fate: requeue, fallback, or loss."""
        policy = self.resilience.retry if self.resilience is not None else None
        if policy is not None and is_retryable(error) and policy.retries_left(attempt):
            obs.count("resilience.requeues")
            delay = policy.delay_s(attempt, jitter_rng(label, shard.index))
            if delay > 0:
                time.sleep(delay)
            # Requeued shards go to the front: they have already waited a
            # full dispatch cycle, and running them next keeps the
            # stage's tail short.
            queue.appendleft((shard, attempt + 1))
            return
        if self.resilience is not None and self.resilience.fallback_in_process:
            obs.count("resilience.fallbacks")
            try:
                _trip_local_fault(self.faults, label, shard.index, attempt + 1, self.shard_timeout_s)
                with obs.span(f"{label}.shard", shard=shard.index, n_items=len(shard)) as span:
                    value = task(shard, telemetry)
                obs.observe(SHARD_DURATION_METRIC, span.duration_ms)
                _record_flight(
                    obs, label, shard.index, "fallback", 0.0, span.duration_s, attempt + 1, span.start_s
                )
                results[shard.index] = value
                return
            except Exception as fallback_error:  # noqa: BLE001 — quarantined below
                error = fallback_error
        if self.resilience is not None:
            obs.count("resilience.quarantined_shards")
            results[shard.index] = ShardLoss(
                index=shard.index,
                error=f"{type(error).__name__}: {error}",
                attempts=attempt + 2,
            )
            return
        raise error


class PoolExecutor(ProcessExecutor):
    """The ``pool`` backend: supervision over a persistent worker pool.

    Identical dispatch, supervision, and resilience semantics to
    :class:`ProcessExecutor` — the only difference is pool lifetime.  The
    pool is leased from :func:`repro.parallel.pool.get_pool` (process-wide,
    keyed by worker count), survives stage exit, and a broken/hung pool is
    rebuilt **in place** so its identity and restart count persist in the
    flight recorder.  Spawn + import warmup is therefore paid once per
    process, not once per fan-out.
    """

    name = "pool"

    def _lease(self, window: int, start_method: str) -> WorkerPool:
        # The persistent pool always holds the configured worker count;
        # ``window`` only bounds in-flight submissions for small stages.
        return get_pool(self.workers, start_method)

    def _recycle(self, pool: WorkerPool, window: int, start_method: str) -> WorkerPool:
        pool.rebuild()
        return pool

    def _release(self, pool: WorkerPool) -> None:
        # Deliberately kept alive: the next stage (or campaign) reuses it.
        pass

    def _pool_info(self, pool: WorkerPool, window: int, restarts: int) -> dict[str, Any]:
        # handle-cumulative ``restarts`` plus this stage's own share.
        return dict(pool.info(), stage_restarts=restarts)


Executor = SerialExecutor | ProcessExecutor


def make_executor(
    config: ParallelConfig,
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
) -> Executor:
    """The executor for ``config`` (``serial`` unless told otherwise)."""
    if config.backend == "pool":
        return PoolExecutor(
            config.workers,
            faults=faults,
            resilience=resilience,
            shard_timeout_s=config.shard_timeout_s,
        )
    if config.backend == "process":
        return ProcessExecutor(
            config.workers,
            faults=faults,
            resilience=resilience,
            shard_timeout_s=config.shard_timeout_s,
        )
    return SerialExecutor(
        faults=faults, resilience=resilience, shard_timeout_s=config.shard_timeout_s
    )


def run_sharded(
    task: ShardTask,
    plan: ShardPlan,
    config: ParallelConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    label: str = "parallel",
    faults: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    payloads: Sequence[Any] | None = None,
) -> list[Any]:
    """Execute ``task`` over every shard of ``plan``; ordered results.

    The fan-out is traced as ``<label>.fanout`` (attributes: backend,
    workers, shard/item counts) and every shard lands one observation in
    :data:`SHARD_DURATION_METRIC`, whichever backend ran it.

    ``payloads`` (optional, one per shard) attaches per-shard data — a
    compact RNG seed, typically — as ``shard.payload``, so a stage can
    ship each worker only *its* shard's context instead of closing the
    task over per-shard state for the whole stage.

    With ``resilience``, a shard that exhausts its attempts is replaced
    by a :class:`~repro.resilience.ShardLoss` sentinel in the returned
    list; when the losses exceed ``resilience.budget`` the stage aborts
    with :class:`~repro.resilience.ShardQuarantinedError` instead.
    Without ``resilience`` (the default) the first failure propagates.
    """
    config = config or ParallelConfig()
    shards = plan.shards()
    if not shards:
        return []
    if payloads is not None:
        require(
            len(payloads) == len(shards),
            f"payloads length {len(payloads)} != shard count {len(shards)}",
        )
        shards = [
            dataclasses.replace(shard, payload=payload)
            for shard, payload in zip(shards, payloads)
        ]
    obs = ensure_telemetry(telemetry)
    executor = make_executor(config, faults=faults, resilience=resilience)
    effective_workers = config.workers if executor.name != "serial" else 1
    obs.gauge("parallel.workers_resolved", effective_workers)
    with obs.span(
        f"{label}.fanout",
        backend=executor.name,
        workers=effective_workers,
        n_shards=len(shards),
        n_items=plan.n_items,
    ):
        results = executor.map_shards(task, shards, telemetry, label)
    losses = [result for result in results if isinstance(result, ShardLoss)]
    if losses:
        budget = resilience.budget if resilience is not None else ErrorBudget()
        obs.count("resilience.shards_lost", len(losses))
        obs.gauge(f"resilience.{label}.budget_used_fraction", len(losses) / len(shards))
        if not budget.allows(len(losses), len(shards)):
            raise ShardQuarantinedError(
                f"stage {label!r} lost {len(losses)}/{len(shards)} shards, over its error "
                f"budget of {budget.shard_loss_fraction:.0%}; first loss: {losses[0].error}"
            )
    obs.count(f"{label}.shards_executed", len(shards) - len(losses))
    return results


# -- flight recording and worker-side machinery ------------------------------------


def _record_flight(
    obs: Telemetry,
    label: str,
    shard_index: int,
    worker: str,
    queue_wait_s: float,
    execute_s: float,
    attempt: int,
    started_s: float,
    payload: tuple[int, bool] = (0, False),
) -> None:
    """Log one completed shard with the flight recorder (plus histograms)."""
    flight = obs.flight
    if not flight.enabled:
        return
    flight.record(
        label,
        shard_index,
        worker,
        queue_wait_s=queue_wait_s,
        execute_s=execute_s,
        attempt=attempt,
        started_s=started_s,
        payload_bytes=payload[0],
        shm=payload[1],
    )
    obs.observe("flight.queue_wait_ms", 1000.0 * queue_wait_s)
    obs.observe("flight.execute_ms", 1000.0 * execute_s)


def _invoke_shard(
    task: ShardTask,
    shard: Shard,
    label: str,
    capture: bool,
    faults: FaultPlan | None = None,
    attempt: int = 0,
) -> tuple[Any, dict[str, Any] | None]:
    """Run one shard in a worker process; optionally capture its telemetry.

    The captured snapshot carries a ``worker`` entry (pid, wall-clock span
    start, execute seconds) so the parent can rebase the worker's spans
    onto its own timeline and feed the flight recorder.
    """
    _trip_worker_fault(faults, label, shard.index, attempt)
    if not capture:
        return task(shard, None), None
    worker = Telemetry(tracer=Tracer(), metrics=MetricsRegistry(), logger=NULL_LOGGER)
    with worker.span(f"{label}.shard", shard=shard.index, n_items=len(shard)) as span:
        value = task(shard, worker)
    worker.observe(SHARD_DURATION_METRIC, span.duration_ms)
    snapshot = telemetry_to_json(worker, name=f"{label}.shard", include_values=True)
    snapshot["worker"] = {
        "pid": os.getpid(),
        "wall_origin": worker.tracer.wall_origin,
        "execute_s": span.duration_s,
    }
    return value, snapshot


def _merge_worker_snapshot(
    telemetry: Telemetry,
    snapshot: dict[str, Any],
    label: str = "parallel",
    shard_index: int = -1,
    submit_wall: float | None = None,
    attempt: int = 0,
    payload: tuple[int, bool] = (0, False),
) -> None:
    """Fold one worker's snapshot into the parent bundle.

    Metrics merge through :meth:`MetricsRegistry.merge_json`; the worker's
    span forest is adopted by the currently-open parent span (the stage's
    fan-out span), preserving recorded durations.  Worker spans were
    recorded against the worker tracer's own origin, so they are rebased
    onto the parent timeline first (wall-clock origin delta,
    :func:`~repro.obs.trace.shift_spans`) and tagged with the worker id.
    The same wall-clock bookkeeping feeds the flight recorder: queue wait
    is worker start minus submission, both in parent wall time.
    """
    if telemetry.metrics.enabled:
        telemetry.metrics.merge_json(snapshot)
    worker_info = snapshot.get("worker") or {}
    worker_name = f"pid-{worker_info['pid']}" if "pid" in worker_info else "worker"
    parent_wall = telemetry.tracer.wall_origin
    worker_wall = worker_info.get("wall_origin")
    if telemetry.tracer.enabled:
        spans = [Span.from_json(entry) for entry in snapshot.get("spans", ())]
        if parent_wall is not None and worker_wall is not None:
            shift_spans(spans, worker_wall - parent_wall)
        for span in spans:
            span.attributes.setdefault("worker", worker_name)
        telemetry.tracer.adopt(spans)
    execute_s = worker_info.get("execute_s")
    if execute_s is not None:
        queue_wait_s = (
            max(0.0, worker_wall - submit_wall)
            if submit_wall is not None and worker_wall is not None
            else 0.0
        )
        started_s = (
            worker_wall - parent_wall
            if parent_wall is not None and worker_wall is not None
            else 0.0
        )
        _record_flight(
            telemetry,
            label,
            shard_index,
            worker_name,
            queue_wait_s,
            float(execute_s),
            attempt,
            started_s,
            payload=payload,
        )


def _probe_worker() -> int:
    """Trivial round-trip payload for :func:`process_backend_available`."""
    return 42


def preferred_start_method() -> str:
    """The multiprocessing start method the process backends use.

    ``fork`` when the platform offers it (cheapest, inherits the parent's
    imports), otherwise whatever the platform default is (``spawn`` on
    macOS/Windows, which re-imports :mod:`repro` in each worker).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


@lru_cache(maxsize=1)
def process_backend_available() -> bool:
    """Whether a worker pool can actually run here (probed once, cached).

    Sandboxes and some CI runners restrict process creation or semaphores;
    callers (and ``tests/conftest.py``) use this to degrade gracefully to
    the serial backend instead of crashing mid-pipeline.
    """
    try:
        context = multiprocessing.get_context(preferred_start_method())
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            return pool.submit(_probe_worker).result(timeout=60) == 42
    except Exception:
        return False
