"""Execution backends: run a shard task serially or across processes.

A *shard task* is a picklable callable ``task(shard, telemetry) -> result``.
Both backends return results **in shard-index order**, so a sharded stage is
a drop-in replacement for its serial loop: determinism comes from the
:class:`~repro.parallel.plan.ShardPlan` (partition and RNG streams fixed
before dispatch), not from execution order.

Telemetry crosses the process boundary by value: each worker records into a
fresh private bundle, returns its snapshot alongside the shard result, and
the parent merges snapshots back — counters add, histogram observations
extend, and the worker's span forest is adopted under the stage's fan-out
span, in shard order.  Nothing is recorded twice: in process mode the
parent records only the fan-out span and the merge, never the per-shard
work the workers already accounted for.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable

from repro._util import require
from repro.obs import MetricsRegistry, Telemetry, ensure_telemetry
from repro.obs.export import telemetry_to_json
from repro.obs.logging import NULL_LOGGER
from repro.obs.trace import Span, Tracer

from repro.parallel.plan import Shard, ShardPlan

#: Recognised backend names, in preference order.
BACKENDS = ("serial", "process")

#: Shard-duration histogram shared by every sharded stage.
SHARD_DURATION_METRIC = "parallel.shard_duration_ms"

#: Default work units per shard for the latency campaign (offnet IPs).
DEFAULT_CAMPAIGN_CHUNK = 64

#: Default work units per shard for clustering ((isp_asn, xi) pairs).
DEFAULT_CLUSTERING_CHUNK = 4

ShardTask = Callable[[Shard, Telemetry | None], Any]


@dataclass(frozen=True)
class ParallelConfig:
    """How sharded pipeline stages execute.

    Chunk sizes shape the :class:`ShardPlan` and therefore the artifacts'
    RNG stream layout; ``backend`` and ``workers`` only decide *where*
    shards run, so changing them never changes results.
    """

    backend: str = "serial"
    workers: int = 1
    #: Offnet IPs per campaign shard.
    campaign_chunk: int = DEFAULT_CAMPAIGN_CHUNK
    #: (isp_asn, xi) pairs per clustering shard.
    clustering_chunk: int = DEFAULT_CLUSTERING_CHUNK

    def __post_init__(self) -> None:
        require(self.backend in BACKENDS, f"backend must be one of {BACKENDS}, got {self.backend!r}")
        require(self.workers >= 1, "workers must be >= 1")
        require(self.campaign_chunk >= 1, "campaign_chunk must be >= 1")
        require(self.clustering_chunk >= 1, "clustering_chunk must be >= 1")


class SerialExecutor:
    """Runs shards in-process, in order; the reference backend."""

    name = "serial"

    def map_shards(
        self, task: ShardTask, shards: list[Shard], telemetry: Telemetry | None, label: str
    ) -> list[Any]:
        obs = ensure_telemetry(telemetry)
        results = []
        for shard in shards:
            with obs.span(f"{label}.shard", shard=shard.index, n_items=len(shard)) as span:
                results.append(task(shard, telemetry))
            obs.observe(SHARD_DURATION_METRIC, span.duration_ms)
        return results


class ProcessExecutor:
    """Runs shards on a :class:`~concurrent.futures.ProcessPoolExecutor`."""

    name = "process"

    def __init__(self, workers: int) -> None:
        require(workers >= 1, "workers must be >= 1")
        self.workers = workers

    def map_shards(
        self, task: ShardTask, shards: list[Shard], telemetry: Telemetry | None, label: str
    ) -> list[Any]:
        capture = telemetry is not None and telemetry.enabled
        context = multiprocessing.get_context(preferred_start_method())
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(shards)), mp_context=context
        ) as pool:
            futures = [pool.submit(_invoke_shard, task, shard, label, capture) for shard in shards]
            outcomes = [future.result() for future in futures]
        results = []
        for _shard, (value, snapshot) in zip(shards, outcomes):
            if snapshot is not None and telemetry is not None:
                _merge_worker_snapshot(telemetry, snapshot)
            results.append(value)
        return results


Executor = SerialExecutor | ProcessExecutor


def make_executor(config: ParallelConfig) -> Executor:
    """The executor for ``config`` (``serial`` unless told otherwise)."""
    if config.backend == "process":
        return ProcessExecutor(config.workers)
    return SerialExecutor()


def run_sharded(
    task: ShardTask,
    plan: ShardPlan,
    config: ParallelConfig | None = None,
    *,
    telemetry: Telemetry | None = None,
    label: str = "parallel",
) -> list[Any]:
    """Execute ``task`` over every shard of ``plan``; ordered results.

    The fan-out is traced as ``<label>.fanout`` (attributes: backend,
    workers, shard/item counts) and every shard lands one observation in
    :data:`SHARD_DURATION_METRIC`, whichever backend ran it.
    """
    config = config or ParallelConfig()
    shards = plan.shards()
    if not shards:
        return []
    obs = ensure_telemetry(telemetry)
    executor = make_executor(config)
    with obs.span(
        f"{label}.fanout",
        backend=executor.name,
        workers=config.workers if executor.name == "process" else 1,
        n_shards=len(shards),
        n_items=plan.n_items,
    ):
        results = executor.map_shards(task, shards, telemetry, label)
    obs.count(f"{label}.shards_executed", len(shards))
    return results


# -- worker-side machinery ---------------------------------------------------------


def _invoke_shard(
    task: ShardTask, shard: Shard, label: str, capture: bool
) -> tuple[Any, dict[str, Any] | None]:
    """Run one shard in a worker process; optionally capture its telemetry."""
    if not capture:
        return task(shard, None), None
    worker = Telemetry(tracer=Tracer(), metrics=MetricsRegistry(), logger=NULL_LOGGER)
    with worker.span(f"{label}.shard", shard=shard.index, n_items=len(shard)) as span:
        value = task(shard, worker)
    worker.observe(SHARD_DURATION_METRIC, span.duration_ms)
    return value, telemetry_to_json(worker, name=f"{label}.shard", include_values=True)


def _merge_worker_snapshot(telemetry: Telemetry, snapshot: dict[str, Any]) -> None:
    """Fold one worker's snapshot into the parent bundle.

    Metrics merge through :meth:`MetricsRegistry.merge_json`; the worker's
    span forest is adopted by the currently-open parent span (the stage's
    fan-out span), preserving recorded durations.
    """
    if telemetry.metrics.enabled:
        telemetry.metrics.merge_json(snapshot)
    if telemetry.tracer.enabled:
        spans = [Span.from_json(entry) for entry in snapshot.get("spans", ())]
        telemetry.tracer.adopt(spans)


def _probe_worker() -> int:
    """Trivial round-trip payload for :func:`process_backend_available`."""
    return 42


def preferred_start_method() -> str:
    """The multiprocessing start method the process backend uses.

    ``fork`` when the platform offers it (cheapest, inherits the parent's
    imports), otherwise whatever the platform default is (``spawn`` on
    macOS/Windows, which re-imports :mod:`repro` in each worker).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


@lru_cache(maxsize=1)
def process_backend_available() -> bool:
    """Whether a worker pool can actually run here (probed once, cached).

    Sandboxes and some CI runners restrict process creation or semaphores;
    callers (and ``tests/conftest.py``) use this to degrade gracefully to
    the serial backend instead of crashing mid-pipeline.
    """
    try:
        context = multiprocessing.get_context(preferred_start_method())
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            return pool.submit(_probe_worker).result(timeout=60) == 42
    except Exception:
        return False
