"""Capacity objects: offnet sites, PNIs, IXP ports, transit links.

Provisioning reflects the paper's evidence:

* offnet sites are sized with limited headroom over the demand they are
  *expected* to absorb (§4.1: "offnets are running near capacity");
* PNIs, where they exist at all, are sized with a noisy overprovisioning
  factor whose distribution leaves a substantial minority undersized even
  for normal peaks (§4.2.2: Google peaks exceeded capacity by >= 13 %, 10 %
  of Meta PNIs saw demand at twice capacity);
* IXP ports come in standard tiers (10/40/100/400 G) and are shared with
  background peering traffic;
* transit is provisioned against normal load, not hypergiant failover
  (§4.3: "neither transit providers nor IXPs have enough capacity to handle
  hypergiant traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_positive
from repro.capacity.demand import DemandModel
from repro.deployment.placement import DeploymentState
from repro.topology.asn import AS
from repro.topology.generator import Internet

#: Standard IXP port/bundle sizes, Gbps (large ISPs buy port bundles).
IXP_PORT_TIERS = (10.0, 40.0, 100.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0)


@dataclass
class OffnetSiteCapacity:
    """One hypergiant's offnet capacity in one facility of one ISP."""

    facility_id: int
    hypergiant: str
    capacity_gbps: float
    #: Operational fraction (events reduce this; 0 = site down).
    availability: float = 1.0

    @property
    def usable_gbps(self) -> float:
        """Capacity currently usable."""
        return self.capacity_gbps * self.availability


@dataclass(frozen=True)
class PniLink:
    """A dedicated private interconnect to one hypergiant."""

    hypergiant: str
    capacity_gbps: float


@dataclass(frozen=True)
class SharedLink:
    """A capacity pool shared by many services (IXP port or transit)."""

    kind: str
    capacity_gbps: float

    def __post_init__(self) -> None:
        require(self.kind in ("ixp", "transit"), f"unknown shared link kind {self.kind!r}")
        require_positive(self.capacity_gbps, "capacity_gbps")


@dataclass
class IspCapacityPlan:
    """Everything one ISP can use to receive hypergiant traffic."""

    isp: AS
    offnet_sites: dict[str, list[OffnetSiteCapacity]] = field(default_factory=dict)
    pni: dict[str, PniLink] = field(default_factory=dict)
    ixp_port: SharedLink | None = None
    transit: SharedLink = SharedLink("transit", 1.0)

    def offnet_capacity_gbps(self, hypergiant: str) -> float:
        """Total usable offnet capacity for ``hypergiant`` right now."""
        return sum(site.usable_gbps for site in self.offnet_sites.get(hypergiant, ()))

    def sites_of(self, hypergiant: str) -> list[OffnetSiteCapacity]:
        """The hypergiant's sites in this ISP (may be empty)."""
        return list(self.offnet_sites.get(hypergiant, ()))

    def sites_in_facility(self, facility_id: int) -> list[OffnetSiteCapacity]:
        """All hypergiants' site capacities in one facility."""
        return [
            site
            for sites in self.offnet_sites.values()
            for site in sites
            if site.facility_id == facility_id
        ]


@dataclass(frozen=True)
class ProvisioningConfig:
    """Provisioning knobs (defaults calibrated to §4's reported statistics)."""

    #: Offnet capacity headroom over expected peak offnet load.  1.2
    #: reproduces the §4.1 COVID observation (demand +58 % => offnet traffic
    #: +~20 % while interdomain more than doubles).
    offnet_headroom: float = 1.2
    #: Median and log-sigma of the PNI overprovisioning factor.
    pni_overprovision_median: float = 1.2
    pni_overprovision_sigma: float = 0.65
    #: Fraction of an ISP's background (non-hypergiant) peering traffic that
    #: rides its IXP port.
    background_ixp_fraction: float = 0.4
    #: Transit overprovisioning over expected normal transit load.
    transit_headroom: float = 1.25

    def __post_init__(self) -> None:
        require_positive(self.offnet_headroom, "offnet_headroom")
        require_positive(self.pni_overprovision_median, "pni_overprovision_median")
        require(self.pni_overprovision_sigma >= 0, "pni_overprovision_sigma must be >= 0")
        require_positive(self.transit_headroom, "transit_headroom")


def _pick_port_tier(required_gbps: float) -> float:
    """Smallest standard port at least ``required_gbps`` (largest otherwise)."""
    for tier in IXP_PORT_TIERS:
        if tier >= required_gbps:
            return tier
    return IXP_PORT_TIERS[-1]


def build_capacity_plan(
    internet: Internet,
    state: DeploymentState,
    demand: DemandModel,
    config: ProvisioningConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> dict[int, IspCapacityPlan]:
    """Provision every offnet-hosting ISP; returns plans keyed by ASN."""
    config = config or ProvisioningConfig()
    rng = make_rng(seed)
    plans: dict[int, IspCapacityPlan] = {}
    for isp in state.hosting_isps():
        plan = IspCapacityPlan(isp=isp)
        hosted = state.hypergiants_in(isp)

        for hypergiant in hosted:
            deployment = state.deployment_of(hypergiant, isp)
            expected_peak = demand.offnet_eligible_gbps(isp, hypergiant, hour=20)
            total_capacity = expected_peak * config.offnet_headroom
            # Split capacity across facilities proportionally to server count.
            servers_by_facility: dict[int, int] = {}
            for server in deployment.servers:
                servers_by_facility[server.facility.facility_id] = (
                    servers_by_facility.get(server.facility.facility_id, 0) + 1
                )
            n_servers = len(deployment.servers)
            plan.offnet_sites[hypergiant] = [
                OffnetSiteCapacity(
                    facility_id=facility_id,
                    hypergiant=hypergiant,
                    capacity_gbps=total_capacity * count / n_servers,
                )
                for facility_id, count in sorted(servers_by_facility.items())
            ]

            # PNI, if the ground-truth graph has one.
            hypergiant_as = internet.hypergiant_as(hypergiant)
            if internet.graph.are_peers(isp, hypergiant_as) and internet.graph.peer_edge(isp, hypergiant_as).has_pni:
                normal_interdomain_peak = demand.hypergiant_peak_gbps(isp, hypergiant) - expected_peak
                normal_interdomain_peak = max(0.5, normal_interdomain_peak)
                factor = float(
                    rng.lognormal(np.log(config.pni_overprovision_median), config.pni_overprovision_sigma)
                )
                plan.pni[hypergiant] = PniLink(hypergiant, normal_interdomain_peak * factor)

        # IXP port: present iff the ISP peers with anything over an IXP.
        hypergiant_ases = [internet.hypergiant_as(name) for name in sorted(internet.hypergiant_ases)]
        uses_ixp = any(
            internet.graph.are_peers(isp, hg) and internet.graph.peer_edge(isp, hg).has_ixp
            for hg in hypergiant_ases
        )
        background_peak = demand.background_peering_gbps(isp, hour=20)
        if uses_ixp:
            required = config.background_ixp_fraction * background_peak * 1.3
            plan.ixp_port = SharedLink("ixp", _pick_port_tier(max(10.0, required)))

        # Transit: sized for normal load (background via transit + the
        # interdomain slices of hypergiants lacking a PNI).  Without an IXP
        # port, all background peering traffic rides transit.
        background_transit_fraction = (
            1.0 - config.background_ixp_fraction if plan.ixp_port is not None else 1.0
        )
        normal_transit = background_transit_fraction * background_peak
        for hypergiant in hosted:
            if hypergiant not in plan.pni:
                normal_transit += max(
                    0.0,
                    demand.hypergiant_peak_gbps(isp, hypergiant)
                    - demand.offnet_eligible_gbps(isp, hypergiant, hour=20),
                )
        plan.transit = SharedLink("transit", max(1.0, normal_transit * config.transit_headroom))
        plans[isp.asn] = plan
    return plans
