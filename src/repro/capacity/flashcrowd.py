"""Flash crowds on the shared facility uplink (§3.3's intra-facility risk).

"Traffic surges from one hypergiant might monopolize the available
bandwidth, inadvertently impeding other hypergiants.  Such surges could be
caused by flash crowds, misconfigurations, or denial of service attacks."

The colocated offnets of a facility share the building's uplink.  This
module simulates a minute-resolution flash crowd on one hypergiant and
measures what happens to *the other* hypergiants in the same facility —
the collateral mechanism that simply cannot occur when deployments are
dispersed across facilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require, require_fraction, require_positive


@dataclass(frozen=True)
class FlashCrowdEvent:
    """A surge profile: ramp up, plateau, decay (minute resolution)."""

    target_hypergiant: str
    peak_multiplier: float
    ramp_minutes: int = 10
    plateau_minutes: int = 20
    decay_minutes: int = 30

    def __post_init__(self) -> None:
        require_positive(self.peak_multiplier, "peak_multiplier")
        require(self.ramp_minutes >= 1 and self.decay_minutes >= 1, "bad ramp shape")

    @property
    def duration_minutes(self) -> int:
        """Total event length."""
        return self.ramp_minutes + self.plateau_minutes + self.decay_minutes

    def multiplier_at(self, minute: int) -> float:
        """Demand multiplier at ``minute`` (1.0 outside the event)."""
        if minute < 0 or minute >= self.duration_minutes:
            return 1.0
        if minute < self.ramp_minutes:
            fraction = (minute + 1) / self.ramp_minutes
            return 1.0 + (self.peak_multiplier - 1.0) * fraction
        if minute < self.ramp_minutes + self.plateau_minutes:
            return self.peak_multiplier
        decay_position = minute - self.ramp_minutes - self.plateau_minutes
        fraction = 1.0 - (decay_position + 1) / self.decay_minutes
        return 1.0 + (self.peak_multiplier - 1.0) * max(0.0, fraction)


@dataclass(frozen=True)
class FacilityUplink:
    """The shared building uplink the colocated offnets serve through."""

    capacity_gbps: float
    #: Steady-state demand per hypergiant hosted in the facility, Gbps.
    steady_demand_gbps: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.capacity_gbps, "capacity_gbps")
        require(bool(self.steady_demand_gbps), "facility hosts no demand")
        for name, demand in self.steady_demand_gbps.items():
            require(demand >= 0, f"negative demand for {name}")


@dataclass
class FlashCrowdOutcome:
    """Minute-by-minute result of one event against one facility."""

    uplink: FacilityUplink
    event: FlashCrowdEvent
    #: hypergiant -> per-minute served Gbps.
    served: dict[str, np.ndarray] = field(default_factory=dict)
    #: hypergiant -> per-minute offered Gbps.
    offered: dict[str, np.ndarray] = field(default_factory=dict)

    def bystander_loss_fraction(self, hypergiant: str) -> float:
        """Fraction of a *non-target* hypergiant's bytes lost to the surge."""
        require(hypergiant != self.event.target_hypergiant, "ask about a bystander")
        offered = self.offered[hypergiant].sum()
        served = self.served[hypergiant].sum()
        return 1.0 - served / offered if offered else 0.0

    def degraded_minutes(self, hypergiant: str) -> int:
        """Minutes during which the hypergiant was throttled."""
        return int(
            (self.served[hypergiant] < self.offered[hypergiant] * (1 - 1e-9)).sum()
        )

    @property
    def peak_utilization(self) -> float:
        """Highest offered-to-capacity ratio over the event."""
        total_offered = sum(self.offered.values())
        return float(total_offered.max() / self.uplink.capacity_gbps)


def simulate_flash_crowd(uplink: FacilityUplink, event: FlashCrowdEvent) -> FlashCrowdOutcome:
    """Run one event: per-minute fair-share allocation on the uplink.

    The target hypergiant's demand follows the event profile; bystanders
    stay at steady state.  When the uplink saturates, everyone is throttled
    proportionally (the facility has no per-tenant isolation — §6's point).
    """
    require(
        event.target_hypergiant in uplink.steady_demand_gbps,
        f"{event.target_hypergiant} is not hosted in this facility",
    )
    minutes = event.duration_minutes
    outcome = FlashCrowdOutcome(uplink=uplink, event=event)
    for name in sorted(uplink.steady_demand_gbps):
        outcome.offered[name] = np.empty(minutes)
        outcome.served[name] = np.empty(minutes)

    for minute in range(minutes):
        offered_now: dict[str, float] = {}
        for name, steady in uplink.steady_demand_gbps.items():
            multiplier = event.multiplier_at(minute) if name == event.target_hypergiant else 1.0
            offered_now[name] = steady * multiplier
        total = sum(offered_now.values())
        factor = min(1.0, uplink.capacity_gbps / total) if total > 0 else 1.0
        for name, offered in offered_now.items():
            outcome.offered[name][minute] = offered
            outcome.served[name][minute] = offered * factor
    return outcome


def colocated_vs_dispersed(
    steady_demand_gbps: dict[str, float],
    event: FlashCrowdEvent,
    headroom: float = 1.3,
) -> tuple[FlashCrowdOutcome, dict[str, FlashCrowdOutcome]]:
    """The §3.3 comparison: one shared facility vs one facility per HG.

    ``headroom`` sizes every uplink at headroom x its steady demand.
    Returns (colocated outcome, per-hypergiant dispersed outcomes).
    """
    require_positive(headroom, "headroom")
    total = sum(steady_demand_gbps.values())
    colocated = simulate_flash_crowd(
        FacilityUplink(capacity_gbps=headroom * total, steady_demand_gbps=dict(steady_demand_gbps)),
        event,
    )
    dispersed: dict[str, FlashCrowdOutcome] = {}
    for name, steady in steady_demand_gbps.items():
        single = FacilityUplink(
            capacity_gbps=headroom * steady, steady_demand_gbps={name: steady}
        )
        if name == event.target_hypergiant:
            dispersed[name] = simulate_flash_crowd(single, event)
        else:
            quiet = FlashCrowdEvent(
                target_hypergiant=name,
                peak_multiplier=1.0,
                ramp_minutes=event.ramp_minutes,
                plateau_minutes=event.plateau_minutes,
                decay_minutes=event.decay_minutes,
            )
            dispersed[name] = simulate_flash_crowd(single, quiet)
    return colocated, dispersed
