"""The overflow waterfall: offnet → PNI → IXP → transit → unserved.

When demand for a hypergiant's content exceeds what its offnets in the ISP
can serve, the excess crosses interdomain boundaries: first any dedicated
PNI, then shared paths (the ISP's IXP port, then transit).  Shared links are
modelled with fair-share congestion — when offered load exceeds capacity,
every flow on the link (including background, non-hypergiant traffic) is
throttled proportionally, which is exactly the §4.3 collateral-damage
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require, require_non_negative
from repro.capacity.demand import DemandModel
from repro.capacity.isolation import IsolationPolicy, allocate
from repro.capacity.links import IspCapacityPlan
from repro.topology.generator import Internet


@dataclass
class HourlyFlow:
    """Where one hypergiant's demand in one ISP was served at one hour."""

    hypergiant: str
    demand_gbps: float
    offnet_gbps: float = 0.0
    pni_gbps: float = 0.0
    ixp_gbps: float = 0.0
    transit_gbps: float = 0.0

    @property
    def interdomain_gbps(self) -> float:
        """Everything that crossed an interdomain boundary."""
        return self.pni_gbps + self.ixp_gbps + self.transit_gbps

    @property
    def served_gbps(self) -> float:
        """Total served (offnet + interdomain)."""
        return self.offnet_gbps + self.interdomain_gbps

    @property
    def unserved_gbps(self) -> float:
        """Demand that found no capacity (congested away)."""
        return max(0.0, self.demand_gbps - self.served_gbps)


@dataclass
class SpilloverReport:
    """One ISP-hour: per-hypergiant flows plus shared-link accounting."""

    isp_asn: int
    hour: int
    flows: dict[str, HourlyFlow] = field(default_factory=dict)
    ixp_utilization: float = 0.0
    transit_utilization: float = 0.0
    #: Background (non-hypergiant) traffic throttled on shared links, Gbps.
    background_collateral_gbps: float = 0.0

    @property
    def total_offnet_gbps(self) -> float:
        """Offnet-served volume across hypergiants."""
        return sum(f.offnet_gbps for f in self.flows.values())

    @property
    def total_interdomain_gbps(self) -> float:
        """Interdomain volume across hypergiants."""
        return sum(f.interdomain_gbps for f in self.flows.values())

    @property
    def total_unserved_gbps(self) -> float:
        """Unserved volume across hypergiants."""
        return sum(f.unserved_gbps for f in self.flows.values())

    @property
    def congested(self) -> bool:
        """Whether any shared link ran above capacity this hour."""
        return self.ixp_utilization > 1.0 or self.transit_utilization > 1.0


def _fair_share(wanted: dict[str, float], background: float, capacity: float) -> tuple[dict[str, float], float, float]:
    """Fair-share allocation on a congested link.

    Returns (granted per flow, throttled background volume, utilization =
    offered / capacity).  When offered <= capacity everyone gets what they
    want; otherwise all flows are scaled by capacity / offered.
    """
    require_non_negative(background, "background")
    offered = background + sum(wanted.values())
    if capacity <= 0:
        return ({name: 0.0 for name in wanted}, background, float("inf") if offered > 0 else 0.0)
    utilization = offered / capacity
    if offered <= capacity:
        return (dict(wanted), 0.0, utilization)
    factor = capacity / offered
    granted = {name: volume * factor for name, volume in wanted.items()}
    return (granted, background * (1.0 - factor), utilization)


@dataclass
class SpilloverModel:
    """Computes :class:`SpilloverReport` for ISP-hours under a capacity plan.

    ``policy`` selects the shared-link allocation discipline; the default
    FAIR_SHARE is today's Internet, the alternatives are the §6 isolation
    mitigations (see :mod:`repro.capacity.isolation`).
    """

    internet: Internet
    demand: DemandModel
    plans: dict[int, IspCapacityPlan]
    policy: IsolationPolicy = IsolationPolicy.FAIR_SHARE

    def report(
        self,
        asn: int,
        hour: int,
        demand_multipliers: dict[str, float] | None = None,
        offnet_utilization_cap: float = 1.0,
    ) -> SpilloverReport:
        """One ISP's spillover picture at ``hour``.

        ``demand_multipliers`` scales each hypergiant's demand (surge
        events); missing entries default to 1.0.  ``offnet_utilization_cap``
        is the operating point offnets are steered to: healthy operation
        targets < 1.0 (operators keep headroom for fills and failover),
        crisis operation runs to 1.0 — the §4.1 COVID analysis contrasts the
        two.
        """
        require(0.0 < offnet_utilization_cap <= 1.0, "offnet_utilization_cap must be in (0, 1]")
        require(asn in self.plans, f"no capacity plan for ASN {asn}")
        plan = self.plans[asn]
        isp = plan.isp
        multipliers = demand_multipliers or {}
        report = SpilloverReport(isp_asn=asn, hour=hour)

        residual_after_pni: dict[str, float] = {}
        for hypergiant in sorted(plan.offnet_sites):
            multiplier = multipliers.get(hypergiant, 1.0)
            demand_gbps = self.demand.hypergiant_demand_gbps(isp, hypergiant, hour) * multiplier
            flow = HourlyFlow(hypergiant=hypergiant, demand_gbps=demand_gbps)
            eligible = self.demand.offnet_eligible_gbps(isp, hypergiant, hour) * multiplier
            usable = plan.offnet_capacity_gbps(hypergiant) * offnet_utilization_cap
            flow.offnet_gbps = min(eligible, usable)
            interdomain = demand_gbps - flow.offnet_gbps
            pni = plan.pni.get(hypergiant)
            if pni is not None:
                flow.pni_gbps = min(interdomain, pni.capacity_gbps)
            residual_after_pni[hypergiant] = interdomain - flow.pni_gbps
            report.flows[hypergiant] = flow

        background = self.demand.background_peering_gbps(isp, hour)
        # IXP stage: only hypergiants actually peering with the ISP over an
        # IXP fabric can shift overflow there.
        ixp_wanted: dict[str, float] = {}
        if plan.ixp_port is not None:
            for hypergiant, residual in residual_after_pni.items():
                if residual <= 0:
                    continue
                hypergiant_as = self.internet.hypergiant_as(hypergiant)
                if self.internet.graph.are_peers(isp, hypergiant_as) and self.internet.graph.peer_edge(
                    isp, hypergiant_as
                ).has_ixp:
                    ixp_wanted[hypergiant] = residual
            background_ixp = background * 0.4
            granted, collateral, utilization = allocate(
                self.policy, ixp_wanted, background_ixp, plan.ixp_port.capacity_gbps
            )
            for hypergiant, volume in granted.items():
                report.flows[hypergiant].ixp_gbps = volume
            report.ixp_utilization = utilization
            report.background_collateral_gbps += collateral

        # Transit stage: the path of last resort for everything left.
        transit_wanted = {
            hypergiant: residual - report.flows[hypergiant].ixp_gbps
            for hypergiant, residual in residual_after_pni.items()
            if residual - report.flows[hypergiant].ixp_gbps > 1e-12
        }
        background_transit = background * (0.6 if plan.ixp_port is not None else 1.0)
        granted, collateral, utilization = allocate(
            self.policy, transit_wanted, background_transit, plan.transit.capacity_gbps
        )
        for hypergiant, volume in granted.items():
            report.flows[hypergiant].transit_gbps = volume
        report.transit_utilization = utilization
        report.background_collateral_gbps += collateral
        return report

    def daily_reports(
        self,
        asn: int,
        demand_multipliers: dict[str, float] | None = None,
        offnet_utilization_cap: float = 1.0,
    ) -> list[SpilloverReport]:
        """All 24 hourly reports for one ISP."""
        return [
            self.report(asn, hour, demand_multipliers, offnet_utilization_cap)
            for hour in range(24)
        ]
