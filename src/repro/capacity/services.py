"""Per-service traffic composition (an extension of the demand model).

Each hypergiant's traffic is a mix of services with different diurnal
shapes and cacheabilities: evening-peaked streaming video, flatter
web/API traffic, and bursty software-update pushes (§3.3's flash-crowd
and bad-update risks have service-level roots).
:class:`ServiceAwareDemandModel` is a drop-in replacement for
:class:`~repro.capacity.demand.DemandModel` whose aggregate behaviour
matches the flat model at the daily peak but whose hour-by-hour shape and
offnet-eligible share vary by the mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require, require_fraction
from repro.capacity.demand import DemandModel, DiurnalProfile
from repro.topology.asn import AS

#: A flatter, business-hours shape (web/API traffic).
_FLAT_HOURLY = (
    0.55, 0.50, 0.47, 0.45, 0.46, 0.50,
    0.60, 0.72, 0.84, 0.92, 0.96, 1.00,
    1.00, 0.98, 0.97, 0.95, 0.93, 0.92,
    0.90, 0.88, 0.85, 0.78, 0.70, 0.62,
)
#: An overnight-heavy shape (scheduled software updates, prefetch).
_OVERNIGHT_HOURLY = (
    0.90, 1.00, 1.00, 0.95, 0.85, 0.70,
    0.50, 0.40, 0.35, 0.32, 0.30, 0.30,
    0.32, 0.33, 0.35, 0.38, 0.42, 0.50,
    0.58, 0.65, 0.72, 0.78, 0.82, 0.86,
)


@dataclass(frozen=True)
class ServiceClass:
    """One service within a hypergiant's traffic mix."""

    name: str
    #: Share of the hypergiant's peak traffic.
    share: float
    profile: DiurnalProfile
    #: Fraction of this service's bytes an offnet can serve.
    cacheability: float

    def __post_init__(self) -> None:
        require_fraction(self.share, "share")
        require_fraction(self.cacheability, "cacheability")


def _video(share: float, cacheability: float) -> ServiceClass:
    return ServiceClass("video", share, DiurnalProfile(), cacheability)


def _web(share: float, cacheability: float) -> ServiceClass:
    return ServiceClass("web", share, DiurnalProfile(hourly=_FLAT_HOURLY), cacheability)


def _updates(share: float, cacheability: float) -> ServiceClass:
    return ServiceClass("updates", share, DiurnalProfile(hourly=_OVERNIGHT_HOURLY), cacheability)


#: Default service mixes per hypergiant.  Shares sum to 1; the weighted
#: cacheability reproduces each profile's offnet_serve_fraction (§2.1), so
#: the aggregate eligible share at peak matches the flat model.
DEFAULT_SERVICE_MIXES: dict[str, tuple[ServiceClass, ...]] = {
    # 0.70*0.93 + 0.30*0.497 ≈ 0.80
    "Google": (_video(0.70, 0.93), _web(0.30, 0.497)),
    # 0.95*0.97 + 0.05*0.57 ≈ 0.95
    "Netflix": (_video(0.95, 0.97), _web(0.05, 0.57)),
    # 0.60*0.95 + 0.40*0.725 ≈ 0.86
    "Meta": (_video(0.60, 0.95), _web(0.40, 0.725)),
    # 0.35*0.92 + 0.65*0.658 ≈ 0.75
    "Akamai": (_updates(0.35, 0.92), _web(0.65, 0.658)),
}


@dataclass(frozen=True)
class ServiceAwareDemandModel(DemandModel):
    """Demand with per-service diurnal shapes and cacheabilities."""

    mixes: dict[str, tuple[ServiceClass, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SERVICE_MIXES)
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        for hypergiant, mix in self.mixes.items():
            total = sum(service.share for service in mix)
            require(abs(total - 1.0) < 1e-9, f"{hypergiant} service shares must sum to 1")

    def _mix_for(self, hypergiant: str) -> tuple[ServiceClass, ...]:
        mix = self.mixes.get(hypergiant)
        require(mix is not None, f"no service mix for {hypergiant!r}")
        return mix

    def hypergiant_demand_gbps(self, isp: AS, hypergiant: str, hour: int) -> float:
        """Demand at ``hour``: the mix-weighted sum of service curves."""
        peak = self.hypergiant_peak_gbps(isp, hypergiant)
        return peak * sum(
            service.share * service.profile.at(hour) for service in self._mix_for(hypergiant)
        )

    def offnet_eligible_gbps(self, isp: AS, hypergiant: str, hour: int) -> float:
        """Cacheable slice at ``hour``: per-service cacheability applies."""
        peak = self.hypergiant_peak_gbps(isp, hypergiant)
        return peak * sum(
            service.share * service.profile.at(hour) * service.cacheability
            for service in self._mix_for(hypergiant)
        )

    def service_demand_gbps(self, isp: AS, hypergiant: str, service_name: str, hour: int) -> float:
        """One service's demand at ``hour`` (for event targeting)."""
        peak = self.hypergiant_peak_gbps(isp, hypergiant)
        for service in self._mix_for(hypergiant):
            if service.name == service_name:
                return peak * service.share * service.profile.at(hour)
        raise KeyError(f"{hypergiant} has no service {service_name!r}")
