"""PNI upgrade dynamics: why dedicated links stay overloaded (§4.2.2).

"Hypergiants cannot unilaterally upgrade capacity as demand grows, and
getting ISPs to upgrade can take months or even be impossible."  This
module turns that sentence into a time-stepped model: demand on each PNI
grows month over month; when peak utilization crosses a trigger, an
upgrade is *ordered*, but it lands only after a negotiation/installation
lead time — and a fraction of ISPs never upgrade at all.  The steady state
is exactly the paper's evidence: a persistent share of links whose peak
demand exceeds capacity, some at twice capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction, require_positive


@dataclass(frozen=True)
class UpgradeConfig:
    """Knobs of the upgrade-cycle simulation."""

    months: int = 36
    #: Mean month-over-month demand growth (~2.5 %/mo = ~34 %/yr).
    monthly_growth: float = 0.025
    #: Std-dev of the per-link, per-month growth noise.
    growth_noise: float = 0.015
    #: Peak utilization that triggers an upgrade order.
    trigger_utilization: float = 0.8
    #: Capacity multiplier when an upgrade lands.
    upgrade_factor: float = 2.0
    #: Uniform range of months between order and delivery.
    lead_time_months: tuple[int, int] = (2, 12)
    #: Fraction of ISPs that never upgrade ("or even be impossible").
    never_upgrade_fraction: float = 0.1

    def __post_init__(self) -> None:
        require(self.months >= 1, "months must be >= 1")
        require_positive(self.upgrade_factor, "upgrade_factor")
        require_fraction(self.never_upgrade_fraction, "never_upgrade_fraction")
        require(0 < self.trigger_utilization, "trigger_utilization must be > 0")
        low, high = self.lead_time_months
        require(1 <= low <= high, "bad lead_time_months range")


@dataclass
class LinkTrajectory:
    """One PNI's simulated history."""

    initial_demand: float
    initial_capacity: float
    demand: list[float] = field(default_factory=list)
    capacity: list[float] = field(default_factory=list)
    upgrades_landed: int = 0
    never_upgrades: bool = False

    def utilization(self, month: int) -> float:
        """Peak-demand-to-capacity ratio at ``month``."""
        return self.demand[month] / self.capacity[month]

    @property
    def overloaded_month_fraction(self) -> float:
        """Fraction of months with peak demand above capacity."""
        months = len(self.demand)
        return sum(1 for m in range(months) if self.utilization(m) > 1.0) / months


@dataclass
class UpgradeReport:
    """Fleet-wide outcome of the upgrade cycle."""

    config: UpgradeConfig
    trajectories: list[LinkTrajectory] = field(default_factory=list)

    def overloaded_link_month_fraction(self) -> float:
        """Share of all link-months spent above capacity."""
        if not self.trajectories:
            return 0.0
        return float(np.mean([t.overloaded_month_fraction for t in self.trajectories]))

    def final_overloaded_fraction(self, factor: float = 1.0) -> float:
        """Share of links whose final peak demand exceeds factor x capacity."""
        if not self.trajectories:
            return 0.0
        last = len(self.trajectories[0].demand) - 1
        return float(
            np.mean([t.utilization(last) > factor for t in self.trajectories])
        )

    def mean_final_utilization(self) -> float:
        """Average final peak utilization across links."""
        last = len(self.trajectories[0].demand) - 1
        return float(np.mean([t.utilization(last) for t in self.trajectories]))


def simulate_upgrade_cycle(
    initial_links: list[tuple[float, float]],
    config: UpgradeConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> UpgradeReport:
    """Simulate ``config.months`` of demand growth and lagged upgrades.

    ``initial_links`` holds (peak demand, capacity) pairs, e.g. from
    :func:`repro.capacity.links.build_capacity_plan`'s PNIs.
    """
    config = config or UpgradeConfig()
    rng = make_rng(seed)
    report = UpgradeReport(config=config)
    for demand0, capacity0 in initial_links:
        require(demand0 >= 0 and capacity0 > 0, "bad initial link state")
        trajectory = LinkTrajectory(
            initial_demand=demand0,
            initial_capacity=capacity0,
            never_upgrades=bool(rng.random() < config.never_upgrade_fraction),
        )
        demand = demand0
        capacity = capacity0
        pending_delivery: int | None = None
        for month in range(config.months):
            growth = rng.normal(config.monthly_growth, config.growth_noise)
            demand *= max(0.5, 1.0 + growth)
            if pending_delivery is not None and month >= pending_delivery:
                capacity *= config.upgrade_factor
                trajectory.upgrades_landed += 1
                pending_delivery = None
            if (
                pending_delivery is None
                and not trajectory.never_upgrades
                and demand / capacity >= config.trigger_utilization
            ):
                low, high = config.lead_time_months
                pending_delivery = month + int(rng.integers(low, high + 1))
            trajectory.demand.append(demand)
            trajectory.capacity.append(capacity)
        report.trajectories.append(trajectory)
    return report


def pni_links_from_plans(plans, demand_model) -> list[tuple[float, float]]:
    """Extract (normal peak interdomain demand, PNI capacity) per link."""
    links: list[tuple[float, float]] = []
    for plan in plans.values():
        for hypergiant, pni in sorted(plan.pni.items()):
            peak_total = demand_model.hypergiant_peak_gbps(plan.isp, hypergiant)
            peak_eligible = demand_model.offnet_eligible_gbps(plan.isp, hypergiant, hour=20)
            peak_offnet = min(plan.offnet_capacity_gbps(hypergiant), peak_eligible)
            links.append((max(0.0, peak_total - peak_offnet), pni.capacity_gbps))
    return links
