"""Failure and surge events (§3.3 / §4.1's risk scenarios).

Events mutate a *copy* of the capacity plans (availability) and/or provide
demand multipliers.  The three families the paper worries about:

* **DemandSurge** — flash crowds, COVID-style lockdowns, DoS load;
* **FacilityOutage** — the headline correlated-risk event: power/cooling
  failure takes down *every* hypergiant's offnets in the facility at once;
* **HypergiantSiteFailures** — a bad software update rolling out across one
  hypergiant's offnet fleet, taking down a fraction of its sites everywhere
  (which then stresses the shared spillover paths of *other* hypergiants at
  colocated facilities).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction, require_positive
from repro.capacity.links import IspCapacityPlan


@dataclass(frozen=True)
class DemandSurge:
    """Scale demand for some hypergiants (all ISPs, or a subset)."""

    multiplier: float
    hypergiants: tuple[str, ...]
    #: Restrict to these ASNs (None = everywhere).
    asns: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        require_positive(self.multiplier, "multiplier")
        require(bool(self.hypergiants), "surge needs at least one hypergiant")


@dataclass(frozen=True)
class FacilityOutage:
    """A whole facility loses power/cooling/uplink."""

    facility_id: int


@dataclass(frozen=True)
class HypergiantSiteFailures:
    """A fraction of one hypergiant's sites fail everywhere (bad update)."""

    hypergiant: str
    failure_fraction: float
    seed: int = 0

    def __post_init__(self) -> None:
        require_fraction(self.failure_fraction, "failure_fraction")


@dataclass
class Scenario:
    """A bundle of events applied together."""

    name: str
    surges: list[DemandSurge] = field(default_factory=list)
    facility_outages: list[FacilityOutage] = field(default_factory=list)
    site_failures: list[HypergiantSiteFailures] = field(default_factory=list)

    def demand_multipliers(self, asn: int) -> dict[str, float]:
        """Combined surge multipliers for one ISP."""
        multipliers: dict[str, float] = {}
        for surge in self.surges:
            if surge.asns is not None and asn not in surge.asns:
                continue
            for hypergiant in surge.hypergiants:
                multipliers[hypergiant] = multipliers.get(hypergiant, 1.0) * surge.multiplier
        return multipliers

    def apply_to_plans(self, plans: dict[int, IspCapacityPlan]) -> dict[int, IspCapacityPlan]:
        """Return plans with event-driven availability applied (deep copy)."""
        damaged = copy.deepcopy(plans)
        outage_ids = {outage.facility_id for outage in self.facility_outages}
        for plan in damaged.values():
            for sites in plan.offnet_sites.values():
                for site in sites:
                    if site.facility_id in outage_ids:
                        site.availability = 0.0
        for failure in self.site_failures:
            rng = make_rng(failure.seed)
            for asn in sorted(damaged):
                for site in damaged[asn].offnet_sites.get(failure.hypergiant, ()):
                    if rng.random() < failure.failure_fraction:
                        site.availability = 0.0
        return damaged


def covid_scenario(hypergiants: tuple[str, ...] = ("Netflix",), multiplier: float = 1.58) -> Scenario:
    """The §4.1 lockdown experiment: sustained demand surge, no failures."""
    return Scenario(name="covid-lockdown", surges=[DemandSurge(multiplier, hypergiants)])


def facility_outage_scenario(facility_id: int) -> Scenario:
    """The §3.3 correlated-risk event: one shared facility goes dark."""
    return Scenario(name=f"facility-{facility_id}-outage", facility_outages=[FacilityOutage(facility_id)])


def bad_update_scenario(hypergiant: str, failure_fraction: float = 0.5, seed: int = 0) -> Scenario:
    """A bad software update hits one hypergiant's offnet fleet."""
    return Scenario(
        name=f"{hypergiant.lower()}-bad-update",
        site_failures=[HypergiantSiteFailures(hypergiant, failure_fraction, seed)],
    )
