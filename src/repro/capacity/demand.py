"""Diurnal per-ISP, per-hypergiant traffic demand.

Calibrated against the §2.1 anecdotes: an ISP of a couple of million users
sees ~20-30 Gbps of peak traffic per hypergiant from its offnets.  Demand
follows a classic residential diurnal curve (trough before dawn, peak in the
evening); the paper's §4.1 evidence — "during peak periods, a higher
fraction of traffic from the same services instead comes from more distant
servers" — falls out of the peak hours pushing offnets past capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require, require_positive
from repro.core.traffic_model import TrafficModel
from repro.topology.asn import AS

#: Hour-of-day multipliers (fraction of peak), residential shape.
_DEFAULT_HOURLY = (
    0.50, 0.42, 0.37, 0.35, 0.35, 0.38,  # 00-05: overnight trough
    0.44, 0.52, 0.60, 0.65, 0.68, 0.70,  # 06-11: morning ramp
    0.72, 0.73, 0.74, 0.76, 0.80, 0.86,  # 12-17: afternoon
    0.92, 0.97, 1.00, 1.00, 0.90, 0.68,  # 18-23: evening peak
)


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour demand shape with peak normalised to 1.0."""

    hourly: tuple[float, ...] = _DEFAULT_HOURLY

    def __post_init__(self) -> None:
        require(len(self.hourly) == 24, "need exactly 24 hourly multipliers")
        require(all(0 < m <= 1.0 for m in self.hourly), "multipliers must be in (0, 1]")
        require(max(self.hourly) == 1.0, "peak must be normalised to 1.0")

    def at(self, hour: int) -> float:
        """Multiplier for ``hour`` (0-23)."""
        return self.hourly[hour % 24]

    @property
    def mean(self) -> float:
        """Day-average multiplier (peak-to-mean ratio's inverse)."""
        return float(np.mean(self.hourly))


@dataclass(frozen=True)
class DemandModel:
    """Converts ISP user counts into per-hypergiant Gbps demand."""

    traffic: TrafficModel = field(default_factory=TrafficModel)
    profile: DiurnalProfile = field(default_factory=DiurnalProfile)
    #: Average concurrent demand per user at the daily peak, Mbps.  0.12
    #: reproduces the §2.1 anecdote (1-2M-user ISP, ~20-30 Gbps/HG peak).
    peak_mbps_per_user: float = 0.12

    def __post_init__(self) -> None:
        require_positive(self.peak_mbps_per_user, "peak_mbps_per_user")

    def total_peak_gbps(self, isp: AS) -> float:
        """The ISP's total Internet traffic at the daily peak."""
        return isp.users * self.peak_mbps_per_user / 1000.0

    def hypergiant_peak_gbps(self, isp: AS, hypergiant: str) -> float:
        """Peak demand for one hypergiant's services in one ISP."""
        return self.total_peak_gbps(isp) * self.traffic.profile(hypergiant).traffic_share

    def hypergiant_demand_gbps(self, isp: AS, hypergiant: str, hour: int) -> float:
        """Demand at ``hour`` for one hypergiant's services."""
        return self.hypergiant_peak_gbps(isp, hypergiant) * self.profile.at(hour)

    def offnet_eligible_gbps(self, isp: AS, hypergiant: str, hour: int) -> float:
        """The slice of demand that offnets *could* serve (cacheable share)."""
        return (
            self.hypergiant_demand_gbps(isp, hypergiant, hour)
            * self.traffic.offnet_traffic_fraction(hypergiant)
        )

    def background_peering_gbps(self, isp: AS, hour: int) -> float:
        """Non-hypergiant traffic on the ISP's shared links (collateral pool).

        Everything that is not one of the studied hypergiants: the remainder
        of total traffic.
        """
        hypergiant_share = sum(p.traffic_share for p in self.traffic.profiles)
        return self.total_peak_gbps(isp) * (1.0 - hypergiant_share) * self.profile.at(hour)
