"""Offnet capacity, spillover, and cascading-failure modelling (§4).

§4 argues three things: offnets run near capacity (§4.1), dedicated peering
is missing or undersized (§4.2), and spillover onto shared IXP/transit links
causes collateral damage (§4.3).  This package turns that argument into a
runnable model: diurnal per-service demand (:mod:`repro.capacity.demand`),
capacity objects for offnet sites, PNIs, IXP ports and transit
(:mod:`repro.capacity.links`), the overflow waterfall
(:mod:`repro.capacity.spillover`), failure/surge events
(:mod:`repro.capacity.events`), and cascade propagation with collateral
-damage accounting (:mod:`repro.capacity.cascade`).
"""

from repro.capacity.cascade import CascadeReport, simulate_cascade
from repro.capacity.demand import DemandModel, DiurnalProfile
from repro.capacity.events import DemandSurge, FacilityOutage, HypergiantSiteFailures, Scenario
from repro.capacity.flashcrowd import FacilityUplink, FlashCrowdEvent, colocated_vs_dispersed, simulate_flash_crowd
from repro.capacity.isolation import IsolationPolicy
from repro.capacity.links import IspCapacityPlan, build_capacity_plan
from repro.capacity.services import ServiceAwareDemandModel
from repro.capacity.spillover import HourlyFlow, SpilloverModel, SpilloverReport
from repro.capacity.upgrades import UpgradeConfig, simulate_upgrade_cycle

__all__ = [
    "CascadeReport",
    "DemandModel",
    "DemandSurge",
    "DiurnalProfile",
    "FacilityOutage",
    "FacilityUplink",
    "FlashCrowdEvent",
    "HourlyFlow",
    "HypergiantSiteFailures",
    "IsolationPolicy",
    "IspCapacityPlan",
    "Scenario",
    "ServiceAwareDemandModel",
    "SpilloverModel",
    "SpilloverReport",
    "UpgradeConfig",
    "build_capacity_plan",
    "colocated_vs_dispersed",
    "simulate_cascade",
    "simulate_flash_crowd",
    "simulate_upgrade_cycle",
]
