"""Cascade simulation: events → spillover → collateral damage.

Runs a scenario against a baseline, ISP by ISP and hour by hour, and
aggregates the §4.3 story: how much traffic failed over to shared paths,
which shared links congested, how much background (other-service) traffic
was throttled as collateral, and how many users sit behind a congested or
under-served ISP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import require
from repro.capacity.demand import DemandModel
from repro.capacity.events import Scenario
from repro.capacity.links import IspCapacityPlan
from repro.capacity.spillover import SpilloverModel, SpilloverReport
from repro.obs import Telemetry, ensure_telemetry
from repro.population.users import PopulationDataset
from repro.topology.generator import Internet


@dataclass
class IspOutcome:
    """Baseline-vs-scenario comparison for one ISP over a day."""

    asn: int
    users: int
    baseline_offnet_gbph: float
    scenario_offnet_gbph: float
    baseline_interdomain_gbph: float
    scenario_interdomain_gbph: float
    scenario_unserved_gbph: float
    congested_hours: int
    collateral_gbph: float

    @property
    def offnet_change(self) -> float:
        """Relative change of offnet-served volume (e.g. +0.2 = +20 %)."""
        if self.baseline_offnet_gbph == 0:
            return 0.0
        return self.scenario_offnet_gbph / self.baseline_offnet_gbph - 1.0

    @property
    def interdomain_ratio(self) -> float:
        """Scenario-to-baseline interdomain volume ratio."""
        if self.baseline_interdomain_gbph == 0:
            return float("inf") if self.scenario_interdomain_gbph > 0 else 1.0
        return self.scenario_interdomain_gbph / self.baseline_interdomain_gbph


@dataclass
class CascadeReport:
    """Aggregated scenario outcome."""

    scenario_name: str
    outcomes: dict[int, IspOutcome] = field(default_factory=dict)

    @property
    def total_collateral_gbph(self) -> float:
        """Background traffic throttled across all ISPs (Gbps-hours)."""
        return sum(o.collateral_gbph for o in self.outcomes.values())

    @property
    def congested_isp_asns(self) -> list[int]:
        """ISPs that saw at least one congested shared-link hour."""
        return sorted(asn for asn, o in self.outcomes.items() if o.congested_hours > 0)

    def affected_users(self) -> int:
        """Users behind ISPs with congestion or unserved demand."""
        return sum(
            o.users
            for o in self.outcomes.values()
            if o.congested_hours > 0 or o.scenario_unserved_gbph > 0
        )

    def aggregate_offnet_change(self) -> float:
        """Fleet-wide relative change in offnet-served volume."""
        baseline = sum(o.baseline_offnet_gbph for o in self.outcomes.values())
        scenario = sum(o.scenario_offnet_gbph for o in self.outcomes.values())
        return scenario / baseline - 1.0 if baseline else 0.0

    def aggregate_interdomain_ratio(self) -> float:
        """Fleet-wide scenario/baseline interdomain volume ratio."""
        baseline = sum(o.baseline_interdomain_gbph for o in self.outcomes.values())
        scenario = sum(o.scenario_interdomain_gbph for o in self.outcomes.values())
        if baseline == 0:
            return float("inf") if scenario > 0 else 1.0
        return scenario / baseline


def _day_totals(reports: list[SpilloverReport]) -> tuple[float, float, float, int, float]:
    offnet = sum(r.total_offnet_gbps for r in reports)
    interdomain = sum(r.total_interdomain_gbps for r in reports)
    unserved = sum(r.total_unserved_gbps for r in reports)
    congested_hours = sum(1 for r in reports if r.congested)
    collateral = sum(r.background_collateral_gbps for r in reports)
    return offnet, interdomain, unserved, congested_hours, collateral


def simulate_cascade(
    internet: Internet,
    demand: DemandModel,
    plans: dict[int, IspCapacityPlan],
    scenario: Scenario,
    population: PopulationDataset,
    asns: list[int] | None = None,
    baseline_utilization_cap: float = 1.0,
    scenario_utilization_cap: float = 1.0,
    telemetry: Telemetry | None = None,
) -> CascadeReport:
    """Run ``scenario`` against its baseline over a full day.

    ``asns`` restricts the simulation (default: every planned ISP).  The
    utilization caps set the offnet operating points: §4.1's COVID analysis
    uses a healthy baseline (~0.9) against a crisis scenario running flat
    out (1.0).

    With ``telemetry``, each hourly round is accounted: ``cascade.rounds``,
    ``cascade.congested_rounds``, per-round overloaded shared links
    (``cascade.overloaded_links_per_round``), and per-ISP collateral.
    """
    if asns is None:
        asns = sorted(plans)
    require(all(asn in plans for asn in asns), "unknown ASN in cascade scope")
    obs = ensure_telemetry(telemetry)

    baseline_model = SpilloverModel(internet=internet, demand=demand, plans=plans)
    damaged_plans = scenario.apply_to_plans(plans)
    scenario_model = SpilloverModel(internet=internet, demand=demand, plans=damaged_plans)

    report = CascadeReport(scenario_name=scenario.name)
    with obs.span("cascade", scenario=scenario.name, isps=len(asns)):
        for asn in asns:
            baseline_reports = baseline_model.daily_reports(
                asn, offnet_utilization_cap=baseline_utilization_cap
            )
            multipliers = scenario.demand_multipliers(asn)
            scenario_reports = scenario_model.daily_reports(
                asn, multipliers, offnet_utilization_cap=scenario_utilization_cap
            )
            base_offnet, base_inter, _, _, _ = _day_totals(baseline_reports)
            scen_offnet, scen_inter, scen_unserved, congested, collateral = _day_totals(scenario_reports)
            if obs.metrics.enabled:
                obs.count("cascade.rounds", len(scenario_reports))
                obs.count("cascade.congested_rounds", congested)
                for hourly in scenario_reports:
                    overloaded = int(hourly.ixp_utilization > 1.0) + int(hourly.transit_utilization > 1.0)
                    obs.observe("cascade.overloaded_links_per_round", overloaded)
                obs.observe("cascade.collateral_gbph", collateral)
            report.outcomes[asn] = IspOutcome(
                asn=asn,
                users=population.users_of(asn),
                baseline_offnet_gbph=base_offnet,
                scenario_offnet_gbph=scen_offnet,
                baseline_interdomain_gbph=base_inter,
                scenario_interdomain_gbph=scen_inter,
                scenario_unserved_gbph=scen_unserved,
                congested_hours=congested,
                collateral_gbph=collateral,
            )
        obs.count("cascade.isps_simulated", len(asns))
        obs.log(
            "cascade simulated",
            scenario=scenario.name,
            isps=len(asns),
            congested_isps=len(report.congested_isp_asns),
        )
    return report
