"""Isolation policies for shared links (§6's technical direction).

The discussion section proposes "isolation mechanisms deployed in
colocation facilities, ISPs, IXPs, and transit, to protect capacity for
each hypergiant and for other Internet traffic".  This module implements
three allocation policies for a congested shared link and lets the cascade
experiments compare them:

* ``FAIR_SHARE`` — the status quo: every flow (including background
  traffic) is throttled proportionally; hypergiant failover steals from
  everyone (the §4.3 collateral-damage mechanism).
* ``PROTECT_BACKGROUND`` — background traffic is served first; hypergiant
  spillover shares only the leftover.  No collateral damage, at the price
  of more unserved hypergiant overflow.
* ``RESERVED_SLICES`` — background traffic is protected *and* the
  remaining capacity is split equally among the hypergiants that want it
  (each capped at its slice, slack redistributed), so one hypergiant's
  failover cannot starve another's.
"""

from __future__ import annotations

import enum

from repro._util import require, require_non_negative


class IsolationPolicy(enum.Enum):
    """How a shared link divides capacity under overload."""

    FAIR_SHARE = "fair_share"
    PROTECT_BACKGROUND = "protect_background"
    RESERVED_SLICES = "reserved_slices"


def allocate(
    policy: IsolationPolicy,
    wanted: dict[str, float],
    background: float,
    capacity: float,
) -> tuple[dict[str, float], float, float]:
    """Allocate a shared link under ``policy``.

    Returns ``(granted per flow, throttled background volume, utilization)``
    — the same contract as the fair-share helper in
    :mod:`repro.capacity.spillover`, so the spillover model can swap
    policies.
    """
    require_non_negative(background, "background")
    for name, volume in wanted.items():
        require(volume >= 0, f"negative demand for {name}")
    offered = background + sum(wanted.values())
    utilization = offered / capacity if capacity > 0 else (float("inf") if offered else 0.0)
    if capacity <= 0:
        return ({name: 0.0 for name in wanted}, background, utilization)
    if offered <= capacity:
        return (dict(wanted), 0.0, utilization)

    if policy is IsolationPolicy.FAIR_SHARE:
        factor = capacity / offered
        granted = {name: volume * factor for name, volume in wanted.items()}
        return (granted, background * (1.0 - factor), utilization)

    if policy is IsolationPolicy.PROTECT_BACKGROUND:
        leftover = max(0.0, capacity - background)
        total_wanted = sum(wanted.values())
        if background > capacity:
            # Even background alone exceeds the link: background throttles,
            # spillover gets nothing.
            return ({name: 0.0 for name in wanted}, background - capacity, utilization)
        factor = min(1.0, leftover / total_wanted) if total_wanted else 1.0
        granted = {name: volume * factor for name, volume in wanted.items()}
        return (granted, 0.0, utilization)

    if policy is IsolationPolicy.RESERVED_SLICES:
        # Background first (like PROTECT_BACKGROUND), then an equal split
        # of the leftover among hypergiants, water-filling the slack.
        background_served = min(background, capacity)
        leftover = capacity - background_served
        hungry = {name: volume for name, volume in wanted.items() if volume > 0}
        granted = {name: 0.0 for name in wanted}
        while hungry and leftover > 1e-12:
            share = leftover / len(hungry)
            satisfied = [name for name, deficit in hungry.items() if deficit <= share]
            if not satisfied:
                for name in hungry:
                    granted[name] += share
                leftover = 0.0
                break
            for name in satisfied:
                granted[name] += hungry[name]
                leftover -= hungry.pop(name)
        return (granted, background - background_served, utilization)

    raise ValueError(f"unknown policy {policy!r}")
