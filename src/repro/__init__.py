"""Reproduction of *The Central Problem with Distributed Content* (HotNets'23).

The paper measures how hypergiant offnet servers (Google, Netflix, Meta,
Akamai caches hosted inside ISPs) are discovered, how often they are
colocated in the same facility, how much of a user's traffic one facility
can serve, and how little capacity the spillover paths have.  This library
rebuilds the entire pipeline over a seeded synthetic Internet with ground
truth, so every inference stage can be both *reproduced* and *scored*.

Quick start::

    from repro import StudyConfig, run_study
    from repro.experiments.table2 import run_table2

    study = run_study(StudyConfig())      # scan -> detect -> ping -> cluster
    print(run_table2(study).render())     # the paper's Table 2

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured values of every table and figure.
"""

from repro.core.pipeline import Study, StudyConfig, run_study
from repro.core.traffic_model import TrafficModel
from repro.deployment.growth import DeploymentHistory, build_deployment_history
from repro.deployment.placement import DeploymentState, OffnetServer, place_offnets
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.parallel import ParallelConfig, ShardPlan, run_sharded
from repro.scan.detection import OffnetInventory, detect_offnets
from repro.scan.scanner import ScanResult, run_scan
from repro.topology.generator import Internet, InternetConfig, generate_internet

__version__ = "1.0.0"

__all__ = [
    "DeploymentHistory",
    "DeploymentState",
    "Internet",
    "InternetConfig",
    "MetricsRegistry",
    "OffnetInventory",
    "OffnetServer",
    "ParallelConfig",
    "ScanResult",
    "ShardPlan",
    "Study",
    "StudyConfig",
    "Telemetry",
    "Tracer",
    "TrafficModel",
    "__version__",
    "build_deployment_history",
    "detect_offnets",
    "generate_internet",
    "place_offnets",
    "run_scan",
    "run_sharded",
    "run_study",
]
