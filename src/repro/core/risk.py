"""Correlated-risk scoring of facilities (§3.3).

Quantifies the paper's qualitative argument: a facility hosting offnets of
several hypergiants is a shared-fate domain — a power/cooling outage, a
bandwidth-monopolising surge, or an attack there simultaneously degrades
every hosted service for the ISP's users.  The risk score of a facility is
(users it serves) x (share of their traffic it can serve), i.e. the expected
volume of user-traffic disrupted by a facility-wide event; country-level
"choke point" counts summarise how few facilities cover most of a country's
offnet-served traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require, require_fraction
from repro.clustering.sites import SiteClustering
from repro.core.traffic_model import TrafficModel
from repro.population.users import PopulationDataset


@dataclass(frozen=True)
class FacilityRisk:
    """Risk summary of one inferred facility (latency cluster)."""

    isp_asn: int
    cluster_label: int
    hypergiants: tuple[str, ...]
    servable_share: float
    users: int

    @property
    def exposure(self) -> float:
        """Expected disrupted user-traffic volume (users x servable share)."""
        return self.users * self.servable_share


def rank_facility_risks(
    clusterings_by_isp: dict[int, SiteClustering],
    hypergiant_of_ip: dict[int, str],
    population: PopulationDataset,
    traffic: TrafficModel | None = None,
    min_hypergiants: int = 2,
) -> list[FacilityRisk]:
    """All multi-hypergiant facilities, ranked by exposure (highest first).

    Only clusters hosting at least ``min_hypergiants`` hypergiants are shared
    -fate domains in the paper's sense.
    """
    require(min_hypergiants >= 1, "min_hypergiants must be >= 1")
    traffic = traffic or TrafficModel()
    risks: list[FacilityRisk] = []
    for asn in sorted(clusterings_by_isp):
        clustering = clusterings_by_isp[asn]
        members_by_label: dict[int, set[str]] = {}
        for ip, label in zip(clustering.ips, clustering.labels):
            if label < 0:
                continue
            hypergiant = hypergiant_of_ip.get(ip)
            if hypergiant is not None:
                members_by_label.setdefault(int(label), set()).add(hypergiant)
        for label in sorted(members_by_label):
            members = members_by_label[label]
            if len(members) < min_hypergiants:
                continue
            risks.append(
                FacilityRisk(
                    isp_asn=asn,
                    cluster_label=label,
                    hypergiants=tuple(sorted(members)),
                    servable_share=traffic.facility_share(members),
                    users=population.users_of(asn),
                )
            )
    risks.sort(key=lambda r: (-r.exposure, r.isp_asn, r.cluster_label))
    return risks


def choke_point_count(
    risks: list[FacilityRisk],
    population: PopulationDataset,
    country_code: str,
    coverage: float = 0.5,
) -> int | None:
    """Minimum number of facilities covering ``coverage`` of the country's
    facility-servable exposure.

    Returns None when the country has no multi-hypergiant facilities.  A
    small number means a government (or an attacker) needs to touch only a
    handful of local choke points to affect most offnet-served traffic
    (§3.3's content-control observation).
    """
    require_fraction(coverage, "coverage")
    country_risks = [
        r for r in risks if population.country_by_asn.get(r.isp_asn) == country_code
    ]
    if not country_risks:
        return None
    total = sum(r.exposure for r in country_risks)
    if total == 0:
        return None
    needed = 0
    covered = 0.0
    for risk in sorted(country_risks, key=lambda r: -r.exposure):
        covered += risk.exposure
        needed += 1
        if covered >= coverage * total:
            return needed
    return needed
