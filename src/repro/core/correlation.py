"""Correlated-failure exposure: the §3.3 "shared fate" claim, as numbers.

"Risks become correlated when multiple hypergiants are colocated."  Given
a facility outage rate, a user's expected *joint* outage time for a pair
of services depends entirely on whether the serving offnets share a
facility: colocated servers fail together (joint outage ≈ single outage),
dispersed servers fail (nearly) independently (joint outage ≈ the product
of two small probabilities).  This module computes, per ISP and service
pair, the joint-outage inflation factor that colocation causes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro._util import format_table, require, require_fraction
from repro.deployment.placement import DeploymentState
from repro.population.users import PopulationDataset


@dataclass(frozen=True)
class PairExposure:
    """Joint-outage exposure of one service pair in one ISP."""

    isp_asn: int
    pair: tuple[str, str]
    #: Probability both services are down at once (facility-outage model).
    joint_outage_probability: float
    #: The independent-failure baseline for the same pair.
    independent_baseline: float
    users: int

    @property
    def correlation_factor(self) -> float:
        """How much colocation inflates the joint outage (1 = independent)."""
        if self.independent_baseline == 0:
            return 1.0
        return self.joint_outage_probability / self.independent_baseline


@dataclass
class CorrelationReport:
    """All pairs, all ISPs, plus user-weighted aggregates."""

    facility_outage_probability: float
    exposures: list[PairExposure] = field(default_factory=list)

    def mean_correlation_factor(self, pair: tuple[str, str] | None = None) -> float:
        """User-weighted mean inflation factor (optionally one pair)."""
        rows = [
            e
            for e in self.exposures
            if pair is None or e.pair == tuple(sorted(pair))
        ]
        total_users = sum(e.users for e in rows)
        if total_users == 0:
            return 1.0
        return sum(e.correlation_factor * e.users for e in rows) / total_users

    def worst_pairs(self, top: int = 10) -> list[PairExposure]:
        """Highest-exposure (users x joint probability) pairs."""
        return sorted(
            self.exposures,
            key=lambda e: -(e.users * e.joint_outage_probability),
        )[:top]

    def render(self) -> str:
        """Per-pair aggregate table."""
        pairs = sorted({e.pair for e in self.exposures})
        headers = ["service pair", "mean correlation factor", "user-weighted joint P(out)"]
        rows = []
        for pair in pairs:
            pair_rows = [e for e in self.exposures if e.pair == pair]
            total_users = sum(e.users for e in pair_rows) or 1
            weighted_joint = sum(e.joint_outage_probability * e.users for e in pair_rows) / total_users
            rows.append(
                [
                    " + ".join(pair),
                    f"x{self.mean_correlation_factor(pair):.1e}",
                    f"{weighted_joint:.2e}",
                ]
            )
        note = (
            f"(facility outage probability {self.facility_outage_probability}; "
            "x1 means the pair fails as if its facilities were disjoint — every "
            "shared facility multiplies the joint-outage odds by another "
            f"1/p = {1.0 / self.facility_outage_probability:.0f}x)"
        )
        return format_table(headers, rows) + "\n" + note


def _facility_sets(state: DeploymentState, isp, hypergiant: str) -> set[int]:
    deployment = state.deployment_of(hypergiant, isp)
    if deployment is None:
        return set()
    return {facility.facility_id for facility in deployment.facilities}


def joint_outage_probability(
    facilities_a: set[int], facilities_b: set[int], outage_probability: float
) -> float:
    """P(service A down AND service B down) under per-facility outages.

    A service is down when *all* its facilities in the ISP are out.
    Facilities fail independently with ``outage_probability``; shared
    facilities make the two events overlap.  Exact enumeration over the
    union (facility counts per ISP are tiny).
    """
    require_fraction(outage_probability, "outage_probability")
    require(facilities_a and facilities_b, "both services need facilities")
    universe = sorted(facilities_a | facilities_b)
    probability = 0.0
    for states in itertools.product((False, True), repeat=len(universe)):
        down = {facility for facility, is_down in zip(universe, states) if is_down}
        if facilities_a <= down and facilities_b <= down:
            weight = 1.0
            for is_down in states:
                weight *= outage_probability if is_down else (1.0 - outage_probability)
            probability += weight
    return probability


def build_correlation_report(
    state: DeploymentState,
    population: PopulationDataset,
    facility_outage_probability: float = 0.001,
    hypergiants: tuple[str, ...] = ("Google", "Netflix", "Meta", "Akamai"),
) -> CorrelationReport:
    """Joint-outage exposure for every hosted service pair in every ISP."""
    report = CorrelationReport(facility_outage_probability=facility_outage_probability)
    for isp in state.hosting_isps():
        hosted = [hg for hg in hypergiants if hg in state.hypergiants_in(isp)]
        for a, b in itertools.combinations(hosted, 2):
            facilities_a = _facility_sets(state, isp, a)
            facilities_b = _facility_sets(state, isp, b)
            if not facilities_a or not facilities_b:
                continue
            joint = joint_outage_probability(
                facilities_a, facilities_b, facility_outage_probability
            )
            independent = (
                facility_outage_probability ** len(facilities_a)
                * facility_outage_probability ** len(facilities_b)
            )
            report.exposures.append(
                PairExposure(
                    isp_asn=isp.asn,
                    pair=tuple(sorted((a, b))),
                    joint_outage_probability=joint,
                    independent_baseline=independent,
                    users=population.users_of(isp.asn),
                )
            )
    return report
