"""Figure 1: per-country Internet users in ISPs hosting multiple hypergiants.

For thresholds k = 2, 3, 4, compute per country the fraction of the
country's Internet users that are in ISPs hosting offnets from at least k of
the four hypergiants.  The paper renders these as world maps (Figures 1a-1c)
and highlights countries whose entire user base is in 4-hypergiant ISPs
(Mexico, Bolivia, Uruguay, New Zealand, Mongolia, Greenland).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import format_table, require
from repro.population.users import PopulationDataset
from repro.scan.detection import OffnetInventory


@dataclass
class CountryHostingResult:
    """Per-country user fractions at one hosting threshold k."""

    min_hypergiants: int
    #: country code -> fraction of the country's users in qualifying ISPs.
    fraction_by_country: dict[str, float] = field(default_factory=dict)

    def fraction(self, country_code: str) -> float:
        """The fraction for ``country_code`` (0 if absent)."""
        return self.fraction_by_country.get(country_code, 0.0)

    def countries_above(self, threshold: float) -> list[str]:
        """Country codes whose fraction is >= ``threshold``, sorted."""
        return sorted(c for c, f in self.fraction_by_country.items() if f >= threshold)

    def world_user_fraction(self, population: PopulationDataset) -> float:
        """User-weighted world-wide fraction (for headline statements)."""
        total = population.total_users
        if total == 0:
            return 0.0
        weighted = sum(
            self.fraction_by_country.get(code, 0.0) * users
            for code, users in population.country_totals.items()
        )
        return weighted / total

    def render(self, top: int = 15) -> str:
        """Plain-text table of the ``top`` highest-fraction countries."""
        ranked = sorted(self.fraction_by_country.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        headers = [f"Country (>= {self.min_hypergiants} HGs)", "user fraction"]
        rows = [[code, f"{100 * fraction:.0f}%"] for code, fraction in ranked]
        return format_table(headers, rows)


def country_hosting_fractions(
    inventory: OffnetInventory,
    population: PopulationDataset,
    min_hypergiants: int,
) -> CountryHostingResult:
    """Compute one Figure-1 panel from a detected offnet inventory."""
    require(min_hypergiants >= 1, "min_hypergiants must be >= 1")
    qualifying_asns = {
        asn
        for asn in inventory.hosting_isp_asns()
        if len(inventory.hypergiants_in_isp(asn)) >= min_hypergiants
    }
    result = CountryHostingResult(min_hypergiants=min_hypergiants)
    for country_code in sorted(population.country_totals):
        result.fraction_by_country[country_code] = population.country_fraction(
            country_code, qualifying_asns
        )
    return result
