"""Table 2: bucketing ISPs by how colocated each hypergiant's offnets are.

For each hypergiant H and each ISP hosting H:

* if the ISP hosts only H, it falls in the **Sole HG** column;
* otherwise, compute the fraction of H's offnet IPs in the ISP that are in
  a latency cluster also containing an offnet IP of *another* hypergiant,
  and bucket it into {0 %, (0 %, 50 %), [50 %, 100 %), 100 %}.

Each hypergiant row sums to 100 % across the five buckets.  The analysis is
run twice, at xi = 0.1 and 0.9, bounding the clustering uncertainty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import format_table, require, require_fraction
from repro.clustering.sites import SiteClustering


class ColocationBucket(enum.Enum):
    """Table 2 columns."""

    SOLE = "sole"
    NONE = "0%"
    UNDER_HALF = "(0%,50%)"
    HALF_OR_MORE = "[50%,100%)"
    FULL = "100%"


def bucket_of(fraction: float) -> ColocationBucket:
    """Bucket a colocated fraction (for an ISP hosting multiple HGs)."""
    require_fraction(fraction, "fraction")
    if fraction == 0.0:
        return ColocationBucket.NONE
    if fraction < 0.5:
        return ColocationBucket.UNDER_HALF
    if fraction < 1.0:
        return ColocationBucket.HALF_OR_MORE
    return ColocationBucket.FULL


def colocated_fraction(
    clustering: SiteClustering, hypergiant_of_ip: dict[int, str], hypergiant: str
) -> float | None:
    """Fraction of ``hypergiant``'s IPs colocated with another hypergiant.

    An IP is colocated iff its cluster contains an IP of a different
    hypergiant; unclustered IPs are not colocated.  Returns None when the
    clustering holds no IPs of ``hypergiant``.
    """
    own_ips = [ip for ip in clustering.ips if hypergiant_of_ip.get(ip) == hypergiant]
    if not own_ips:
        return None
    hypergiants_by_label: dict[int, set[str]] = {}
    for ip, label in zip(clustering.ips, clustering.labels):
        if label >= 0:
            hypergiants_by_label.setdefault(int(label), set()).add(hypergiant_of_ip.get(ip, "?"))
    colocated = 0
    for ip in own_ips:
        label = clustering.label_of(ip)
        if label >= 0 and len(hypergiants_by_label[label] - {hypergiant}) > 0:
            colocated += 1
    return colocated / len(own_ips)


@dataclass
class ColocationTable:
    """One Table-2 panel: per-hypergiant bucket percentages at one xi."""

    xi: float
    #: hypergiant -> bucket -> count of ISPs.
    counts: dict[str, dict[ColocationBucket, int]] = field(default_factory=dict)

    def add(self, hypergiant: str, bucket: ColocationBucket) -> None:
        """Count one ISP for ``hypergiant`` in ``bucket``."""
        row = self.counts.setdefault(hypergiant, {b: 0 for b in ColocationBucket})
        row[bucket] += 1

    def total(self, hypergiant: str) -> int:
        """ISPs hosting ``hypergiant`` that entered the analysis."""
        return sum(self.counts.get(hypergiant, {}).values())

    def percentage(self, hypergiant: str, bucket: ColocationBucket) -> float:
        """Bucket share in [0, 1] for the hypergiant's row."""
        total = self.total(hypergiant)
        if total == 0:
            return 0.0
        return self.counts[hypergiant][bucket] / total

    def row_percentages(self, hypergiant: str) -> dict[ColocationBucket, float]:
        """All bucket shares for one hypergiant (sums to 1 when non-empty)."""
        return {bucket: self.percentage(hypergiant, bucket) for bucket in ColocationBucket}

    def render(self) -> str:
        """Plain-text rendering in the paper's Table 2 layout."""
        headers = ["Hypergiant", "xi", "Sole HG", "0%", "(0%,50%)", "[50%,100%)", "100%"]
        rows = []
        for hypergiant in sorted(self.counts):
            row = [hypergiant, f"{self.xi}"]
            for bucket in ColocationBucket:
                row.append(f"{100 * self.percentage(hypergiant, bucket):.0f}%")
            rows.append(row)
        return format_table(headers, rows)


def build_colocation_table(
    xi: float,
    clusterings_by_isp: dict[int, SiteClustering],
    hypergiant_of_ip: dict[int, str],
    hypergiants_by_isp: dict[int, list[str]],
) -> ColocationTable:
    """Build one Table-2 panel.

    ``clusterings_by_isp`` maps analyzable ISP ASNs to their (single, joint
    over all hypergiants) site clustering; ``hypergiants_by_isp`` maps every
    ISP hosting at least one hypergiant to the detected hypergiant list (used
    for the Sole-HG column, which does not require latency analysis).
    """
    table = ColocationTable(xi=xi)
    for asn in sorted(hypergiants_by_isp):
        hosted = hypergiants_by_isp[asn]
        require(bool(hosted), f"ISP {asn} hosts no hypergiants")
        if len(hosted) == 1:
            table.add(hosted[0], ColocationBucket.SOLE)
            continue
        clustering = clusterings_by_isp.get(asn)
        if clustering is None:
            continue  # ISP failed the Appendix-A coverage filter
        for hypergiant in hosted:
            fraction = colocated_fraction(clustering, hypergiant_of_ip, hypergiant)
            if fraction is None:
                continue
            table.add(hypergiant, bucket_of(fraction))
    return table
