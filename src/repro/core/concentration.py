"""Figure 2: the single-facility traffic-share CCDF.

"Since we cannot know exactly which users are served from a facility
hosting offnets, for each ISP we focus on the facility hosting the most
hypergiants and estimate the fraction of traffic it serves" (§3.2).  A
facility here is a latency cluster; its servable share is the sum of the
member hypergiants' servable traffic shares.  Users are weighted by the
population dataset, and the analysis reports a CCDF per clustering
parameter xi (the paper plots both bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import ccdf, require
from repro.clustering.sites import SiteClustering
from repro.core.traffic_model import TrafficModel
from repro.population.users import PopulationDataset
from repro.scan.detection import OffnetInventory


@dataclass
class ConcentrationResult:
    """Per-ISP best-facility shares plus the user-weighted CCDF."""

    xi: float
    #: ASN -> servable share of the ISP's best facility (cluster).
    best_facility_share: dict[int, float] = field(default_factory=dict)
    #: ASN -> number of hypergiants in that best facility.
    best_facility_hypergiants: dict[int, int] = field(default_factory=dict)
    #: ASN -> estimated users (copied from the population dataset).
    users: dict[int, int] = field(default_factory=dict)

    def ccdf_points(self) -> tuple[np.ndarray, np.ndarray]:
        """(share values, P(share >= value)) weighted by users (Figure 2)."""
        asns = sorted(self.best_facility_share)
        values = [self.best_facility_share[a] for a in asns]
        weights = [self.users[a] for a in asns]
        return ccdf(values, weights)

    def user_fraction_with_share_at_least(self, threshold: float) -> float:
        """Fraction of covered users whose best facility serves >= threshold.

        "71%-82% are in an ISP with a facility ... capable of delivering at
        least 25% of their traffic."
        """
        total = sum(self.users.values())
        if total == 0:
            return 0.0
        qualifying = sum(
            self.users[asn]
            for asn, share in self.best_facility_share.items()
            if share >= threshold
        )
        return qualifying / total

    def user_fraction_with_hypergiants_at_least(self, count: int) -> float:
        """Fraction of covered users whose best facility hosts >= count HGs."""
        total = sum(self.users.values())
        if total == 0:
            return 0.0
        qualifying = sum(
            self.users[asn]
            for asn, n in self.best_facility_hypergiants.items()
            if n >= count
        )
        return qualifying / total


def single_facility_concentration(
    xi: float,
    clusterings_by_isp: dict[int, SiteClustering],
    hypergiant_of_ip: dict[int, str],
    population: PopulationDataset,
    traffic: TrafficModel | None = None,
) -> ConcentrationResult:
    """Compute Figure 2's per-user concentration estimates at one xi.

    For each analyzable ISP, every latency cluster is a candidate facility;
    unclustered IPs are single-hypergiant candidate facilities of their own.
    The ISP's value is the servable share of the facility hosting the most
    hypergiants (ties broken by share).
    """
    traffic = traffic or TrafficModel()
    result = ConcentrationResult(xi=xi)
    for asn in sorted(clusterings_by_isp):
        clustering = clusterings_by_isp[asn]
        require(bool(clustering.ips), f"ISP {asn} clustering is empty")
        hypergiants_by_label: dict[int, set[str]] = {}
        for ip, label in zip(clustering.ips, clustering.labels):
            hypergiant = hypergiant_of_ip.get(ip)
            if hypergiant is None:
                continue
            if label >= 0:
                hypergiants_by_label.setdefault(int(label), set()).add(hypergiant)
            else:
                # An unclustered offnet stands alone in its own facility.
                hypergiants_by_label.setdefault(-1 - ip, set()).add(hypergiant)
        best_share = 0.0
        best_count = 0
        for members in hypergiants_by_label.values():
            share = traffic.facility_share(members)
            if (len(members), share) > (best_count, best_share):
                best_count, best_share = len(members), share
        result.best_facility_share[asn] = best_share
        result.best_facility_hypergiants[asn] = best_count
        result.users[asn] = population.users_of(asn)
    return result


def coverage_statistics(
    inventory: OffnetInventory,
    analyzable_asns: list[int],
    population: PopulationDataset,
) -> dict[str, float]:
    """The §3.2 coverage headlines.

    Returns fractions of all Internet users: ``hosting`` (in ISPs with at
    least one offnet; paper: 76 %) and ``analyzable`` (in ISPs whose offnets
    supported the colocation analysis; paper: 56 %).
    """
    hosting = population.world_fraction(inventory.hosting_isp_asns())
    analyzable = population.world_fraction(set(analyzable_asns))
    return {"hosting": hosting, "analyzable": analyzable}
