"""The paper's analysis layer: colocation, concentration, and risk.

This is the "primary contribution" package: given the measurement substrate
outputs (detected offnets, filtered latency matrices, site clusterings,
population estimates), it computes the paper's headline artifacts —
Table 2's colocation buckets (:mod:`repro.core.colocation`), Figure 1's
per-country multi-hypergiant user fractions (:mod:`repro.core.country`),
Figure 2's single-facility traffic-share CCDF
(:mod:`repro.core.concentration`), facility-level correlated-risk scores
(:mod:`repro.core.risk`) — and the end-to-end study driver
(:mod:`repro.core.pipeline`).
"""

from repro.core.colocation import ColocationBucket, ColocationTable, build_colocation_table
from repro.core.concentration import ConcentrationResult, single_facility_concentration
from repro.core.country import CountryHostingResult, country_hosting_fractions
from repro.core.pipeline import Study, StudyConfig, run_study
from repro.core.risk import FacilityRisk, rank_facility_risks
from repro.core.traffic_model import TrafficModel

__all__ = [
    "ColocationBucket",
    "ColocationTable",
    "ConcentrationResult",
    "CountryHostingResult",
    "FacilityRisk",
    "Study",
    "StudyConfig",
    "TrafficModel",
    "build_colocation_table",
    "country_hosting_fractions",
    "rank_facility_risks",
    "run_study",
    "single_facility_concentration",
]
