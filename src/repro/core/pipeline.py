"""The end-to-end study driver.

:func:`run_study` executes the paper's whole measurement pipeline on a
generated Internet: place deployments (2021 + 2023), scan both epochs,
detect offnets, run the latency campaign from the vantage points, apply the
Appendix-A filters, cluster every analyzable ISP at each xi, and attach the
population dataset — returning a :class:`Study` from which each table and
figure is derived.
"""

from __future__ import annotations

import math
from functools import partial
from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, spawn_rng
from repro.clustering.sites import (
    ClusteringConfig,
    ClusteringMemo,
    SiteClustering,
    cluster_isp_offnets,
)
from repro.core.colocation import ColocationTable, build_colocation_table
from repro.core.concentration import ConcentrationResult, single_facility_concentration
from repro.core.country import CountryHostingResult, country_hosting_fractions
from repro.core.traffic_model import TrafficModel
from repro.deployment.growth import DeploymentHistory, build_deployment_history
from repro.deployment.placement import PlacementConfig
from repro.faults import FaultPlan
from repro.mlab.matrix import (
    FilteredCampaign,
    LatencyCampaignConfig,
    LatencyMatrix,
    apply_quality_filters,
    injected_ping_drops,
    measure_offnets,
)
from repro.mlab.vantage import VantagePoint, build_vantage_points
from repro.obs import Telemetry, ensure_telemetry, record_throughput_gauges
from repro.parallel import (
    ParallelConfig,
    Shard,
    ShardPlan,
    SharedArray,
    ShmRegistry,
    run_sharded,
)
from repro.population.users import PopulationDataset, build_population_dataset
from repro.rdns.ptr import PtrConfig, PtrDataset, build_ptr_dataset
from repro.resilience import CoverageReport, ResilienceConfig, ShardLoss
from repro.rdns.validation import ValidationSummary, validate_clusters
from repro.rdns.geohints import build_default_parser
from repro.scan.detection import OffnetInventory, detect_offnets
from repro.scan.scanner import ScanConfig, ScanResult, run_scan
from repro.topology.generator import Internet, InternetConfig, generate_internet


@dataclass(frozen=True)
class StudyConfig:
    """Everything needed to reproduce one full study run."""

    internet: InternetConfig = field(default_factory=InternetConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    scan: ScanConfig = field(default_factory=ScanConfig)
    campaign: LatencyCampaignConfig = field(default_factory=LatencyCampaignConfig)
    ptr: PtrConfig = field(default_factory=PtrConfig)
    n_vantage_points: int = 163
    xis: tuple[float, ...] = (0.1, 0.9)
    #: Log-normal sigma of the population-estimate noise (0 = exact).
    population_noise_sigma: float = 0.0
    #: How the campaign and clustering fan-outs execute.  Backend and
    #: worker count never change the artifacts (chunk sizes do, by design:
    #: they shape the shard RNG streams).
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: Deterministic fault injection (chaos testing).  None = no faults.
    #: Transient faults are retried away and never change artifacts;
    #: permanent data faults degrade coverage and *do* change artifacts
    #: (so they participate in the store key; transient ones do not).
    faults: FaultPlan | None = None
    #: How the run absorbs faults: retry policy, in-process fallback, and
    #: error budgets.  Execution-only — never changes artifacts.  None =
    #: strict mode: the first unhandled failure aborts the run.
    resilience: ResilienceConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.n_vantage_points >= 2, "need at least two vantage points")
        require(bool(self.xis), "need at least one xi value")
        for xi in self.xis:
            require(0.0 < xi < 1.0, f"xi must be in (0, 1), got {xi}")


@dataclass(frozen=True)
class PrecomputedArtifacts:
    """Expensive pipeline artifacts restored from a persisted study.

    :func:`run_study` accepts this to *rehydrate* a study: the cheap
    deterministic stages (topology, deployment, scan, detection, filters,
    population, PTR) replay from the config's seed while the latency
    campaign and the per-ISP clustering — the two stages that dominate
    wall time — are taken from here instead of recomputed.  The RNG spawn
    sequence is preserved either way, so a rehydrated study's artifacts
    are byte-identical to a fresh run's (``tests/test_store.py`` proves
    this differentially).
    """

    rtt_ms: np.ndarray
    target_ips: tuple[int, ...]
    #: xi -> asn -> SiteClustering, exactly as the clustering stage built it.
    clusterings: dict[float, dict[int, SiteClustering]]


@dataclass
class Study:
    """All pipeline artifacts of one run, plus derived-result helpers."""

    config: StudyConfig
    internet: Internet
    history: DeploymentHistory
    scans: dict[str, ScanResult]
    inventories: dict[str, OffnetInventory]
    vantage_points: list[VantagePoint]
    matrix: LatencyMatrix
    campaign: FilteredCampaign
    clusterings: dict[float, dict[int, SiteClustering]]
    population: PopulationDataset
    ptr: PtrDataset
    traffic: TrafficModel = field(default_factory=TrafficModel)
    #: Per-site (lost, total) accounting of injected and quarantined
    #: losses.  Complete (all zeros) on fault-free and transient-only runs.
    coverage: CoverageReport = field(default_factory=CoverageReport)
    #: Telemetry captured while this study ran (None when not requested).
    #: Excluded from comparisons: timings are not part of the artifact.
    telemetry: Telemetry | None = field(default=None, repr=False, compare=False)

    # -- convenient views -----------------------------------------------------

    @property
    def latest_inventory(self) -> OffnetInventory:
        """The 2023 (headline) offnet inventory."""
        return self.inventories["2023"]

    @property
    def hypergiant_of_ip(self) -> dict[int, str]:
        """Detected hypergiant per offnet IP (2023 inventory)."""
        return {d.ip: d.hypergiant for d in self.latest_inventory.detections}

    @property
    def hypergiants_by_isp(self) -> dict[int, list[str]]:
        """Detected hypergiants per hosting ISP ASN (2023 inventory)."""
        inventory = self.latest_inventory
        return {asn: inventory.hypergiants_in_isp(asn) for asn in inventory.hosting_isp_asns()}

    # -- paper artifacts -------------------------------------------------------

    def colocation_table(self, xi: float) -> ColocationTable:
        """Table 2's panel at ``xi``."""
        return build_colocation_table(
            xi, self.clusterings[xi], self.hypergiant_of_ip, self.hypergiants_by_isp
        )

    def concentration(self, xi: float) -> ConcentrationResult:
        """Figure 2's inputs at ``xi``."""
        return single_facility_concentration(
            xi, self.clusterings[xi], self.hypergiant_of_ip, self.population, self.traffic
        )

    def country_result(self, min_hypergiants: int) -> CountryHostingResult:
        """Figure 1's panel for >= ``min_hypergiants`` hypergiants."""
        return country_hosting_fractions(self.latest_inventory, self.population, min_hypergiants)

    def validation(self, xi: float) -> ValidationSummary:
        """§3.2's hostname-based cluster validation at ``xi``."""
        parser = build_default_parser(self.internet.world)
        clusters = [
            cluster
            for clustering in self.clusterings[xi].values()
            for cluster in clustering.clusters
        ]
        return validate_clusters(clusters, self.ptr, parser)

    def scorecard(self, **kwargs):
        """Ground-truth accuracy scorecard for this study (ROADMAP item 5).

        Scores detection, clustering, rDNS geohints, and peering inference
        against the substrate's truth; see
        :func:`repro.eval.build_scorecard` for the knobs.
        """
        from repro.eval import build_scorecard

        return build_scorecard(self, **kwargs)

    def single_site_fraction(self, hypergiant: str, xi: float) -> float:
        """§4.1: fraction of hosting ISPs with a single site for ``hypergiant``.

        Computed over analyzable ISPs hosting the hypergiant; a site is a
        latency cluster (or unclustered singleton) restricted to the
        hypergiant's own IPs.
        """
        hypergiant_of_ip = self.hypergiant_of_ip
        total = 0
        single = 0
        for asn, clustering in self.clusterings[xi].items():
            own_ips = [ip for ip in clustering.ips if hypergiant_of_ip.get(ip) == hypergiant]
            if not own_ips:
                continue
            labels = {clustering.label_of(ip) for ip in own_ips}
            n_sites = sum(1 for label in labels if label >= 0)
            n_sites += sum(1 for ip in own_ips if clustering.label_of(ip) < 0)
            total += 1
            if n_sites == 1:
                single += 1
        return single / total if total else 0.0


def _cluster_shard(
    shared_rtt: SharedArray,
    shard: Shard,
    telemetry: Telemetry | None,
) -> list[tuple[float, int, SiteClustering]]:
    """Cluster one shard of ``(config, asn, ips, column_indices)`` units.

    ``shared_rtt`` is the whole campaign matrix, crossed into workers by
    shared-memory reference; each work unit carries only its ISP's column
    *indices*, and slicing here (``rtt[:, cols]``) materialises exactly
    the submatrix the old copied-payload design pickled per shard —
    identical fancy-indexing, identical bytes.

    OPTICS draws no randomness, so shard placement cannot affect labels;
    per-ISP spans and timings are recorded here so serial and process
    backends produce the same telemetry shape.

    Each shard carries its own :class:`ClusteringMemo`: the pair list is
    ISP-major, so an ISP's xi settings land in the same shard (whenever the
    chunk size is a multiple of ``len(xis)``) and its distance matrix and
    OPTICS ordering are computed once — identically on the serial backend
    and inside every process worker.
    """
    obs = ensure_telemetry(telemetry)
    rtt = shared_rtt.array
    memo = ClusteringMemo()
    results: list[tuple[float, int, SiteClustering]] = []
    for clustering_config, asn, ips, column_indices in shard.items:
        columns = rtt[:, column_indices]
        with obs.span("cluster.isp", asn=asn, xi=clustering_config.xi, n_ips=len(ips)) as isp_span:
            clustering = cluster_isp_offnets(
                columns, list(ips), clustering_config, telemetry=telemetry, memo=memo, memo_key=asn
            )
        obs.observe("cluster.isp_duration_ms", isp_span.duration_ms)
        results.append((clustering_config.xi, asn, clustering))
    return results


def run_study(
    config: StudyConfig | None = None,
    telemetry: Telemetry | None = None,
    precomputed: PrecomputedArtifacts | None = None,
) -> Study:
    """Run the full pipeline; deterministic given ``config.seed``.

    ``telemetry`` (optional) records a span per stage, the filter-attrition
    funnel, and per-ISP clustering timings.  Instrumentation never touches
    the RNG streams, so traced and untraced runs produce identical
    artifacts; without ``telemetry`` every recording call is a no-op.

    ``precomputed`` (optional) substitutes a persisted latency matrix and
    clusterings for the two expensive stages; see
    :class:`PrecomputedArtifacts`.  The stored artifacts must belong to
    exactly this config — a target-IP or xi mismatch raises
    :class:`ValueError` rather than silently mixing runs.
    """
    config = config or StudyConfig()
    obs = ensure_telemetry(telemetry)
    root = make_rng(config.seed)
    faults = config.faults
    resilience = config.resilience
    coverage = CoverageReport()

    with obs.span("study", seed=config.seed, rehydrated=precomputed is not None):
        with obs.span("topology") as topology_span:
            internet = generate_internet(config.internet)
            topology_span.set(n_items=len(internet.isps))
        obs.count("topology.isps", len(internet.isps))
        obs.count("topology.ixps", len(internet.ixps))
        obs.log("topology generated", isps=len(internet.isps), ixps=len(internet.ixps))

        with obs.span("deployment"):
            history = build_deployment_history(
                internet, config=config.placement, seed=spawn_rng(root, "deployment")
            )
        obs.count("deployment.epochs", len(history.epochs))
        obs.count("deployment.servers_2023", len(history.state("2023").servers))

        scans: dict[str, ScanResult] = {}
        with obs.span("scan"):
            for epoch in sorted(history.epochs):
                with obs.span(
                    "scan.epoch", epoch=epoch, n_items=len(history.state(epoch).servers)
                ):
                    scans[epoch] = run_scan(
                        internet,
                        history.state(epoch),
                        config.scan,
                        seed=spawn_rng(root, f"scan-{epoch}"),
                        telemetry=telemetry,
                        faults=faults,
                    )
                coverage.record(
                    "scan.records",
                    scans[epoch].records_dropped,
                    len(history.state(epoch).servers),
                )

        inventories: dict[str, OffnetInventory] = {}
        with obs.span("detect"):
            for epoch in sorted(history.epochs):
                with obs.span("detect.epoch", epoch=epoch) as detect_span:
                    inventories[epoch] = detect_offnets(internet, scans[epoch], telemetry=telemetry)
                    detect_span.set(n_items=len(inventories[epoch]))
        obs.log("offnets detected", **{epoch: len(inv) for epoch, inv in inventories.items()})

        with obs.span("ping_campaign") as campaign_span:
            vantage_points = build_vantage_points(
                internet.world, config.n_vantage_points, seed=spawn_rng(root, "vps")
            )

            # Measure the detected (not ground-truth) IPs: the pipeline must
            # live with its own detection errors, as the real study does.
            state_2023 = history.state("2023")
            target_ips = sorted(
                ip for ip in (d.ip for d in inventories["2023"].detections)
                if state_2023.server_at(ip) is not None
            )
            # Spawn the campaign stream even when rehydrating: every spawn
            # advances the root generator, and later stages (population,
            # PTR) must see exactly the streams a fresh run would.
            pings_rng = spawn_rng(root, "pings")
            n_campaign_shards = -(-len(target_ips) // config.parallel.campaign_chunk)
            if precomputed is None:
                matrix = measure_offnets(
                    internet,
                    state_2023,
                    target_ips,
                    vantage_points,
                    config.campaign,
                    seed=pings_rng,
                    telemetry=telemetry,
                    parallel=config.parallel,
                    faults=faults,
                    resilience=resilience,
                )
            else:
                require(
                    list(precomputed.target_ips) == target_ips,
                    "precomputed artifacts do not match this config: target IPs differ "
                    f"({len(precomputed.target_ips)} stored vs {len(target_ips)} detected)",
                )
                rtt_ms = np.asarray(precomputed.rtt_ms, dtype=float)
                require(
                    rtt_ms.shape == (len(vantage_points), len(target_ips)),
                    f"precomputed matrix shape {rtt_ms.shape} does not match "
                    f"({len(vantage_points)}, {len(target_ips)})",
                )
                # Injected ping drops are a pure function of the plan, so
                # the rehydrated matrix carries the same loss accounting a
                # fresh run would.  Shard losses are always zero here: the
                # store refuses to persist shard-degraded studies.
                dropped = injected_ping_drops(faults, len(target_ips))
                unmeasured = (
                    frozenset(int(target_ips[i]) for i in np.flatnonzero(dropped))
                    if dropped is not None
                    else frozenset()
                )
                matrix = LatencyMatrix(
                    vps=vantage_points,
                    ips=list(target_ips),
                    rtt_ms=rtt_ms,
                    unmeasured_ips=unmeasured,
                    shards_total=n_campaign_shards,
                )
                obs.count("study.rehydrated_measurements", rtt_ms.size)
            campaign_span.set(n_items=int(matrix.rtt_ms.size))
            coverage.record("mlab.pings", len(matrix.unmeasured_ips), len(matrix.ips))
            coverage.record("campaign.shards", matrix.shards_lost, matrix.shards_total)

        # Scale the per-ISP coverage threshold to the vantage-point count
        # (the paper's 100-of-163 is ~61 %).
        effective_min_vps = min(config.campaign.min_vps_per_isp, math.ceil(0.61 * config.n_vantage_points))
        campaign_config = LatencyCampaignConfig(
            ping=config.campaign.ping,
            unresponsive_ip_fraction=config.campaign.unresponsive_ip_fraction,
            split_location_fraction=config.campaign.split_location_fraction,
            inflation_seed=config.campaign.inflation_seed,
            plausibility_slack_ms=config.campaign.plausibility_slack_ms,
            min_vps_per_isp=effective_min_vps,
        )
        ip_to_isp = {d.ip: d.isp_asn for d in inventories["2023"].detections}
        with obs.span("filters", min_vps_per_isp=effective_min_vps, n_items=len(matrix.ips)):
            campaign = apply_quality_filters(matrix, ip_to_isp, campaign_config, telemetry=telemetry)
        obs.log(
            "quality filters applied",
            kept_isps=len(campaign.ips_by_isp),
            dropped_isps=len(campaign.discarded_isp_asns),
        )

        with obs.span(
            "clustering", n_items=len(config.xis) * len(campaign.analyzable_isp_asns)
        ):
            obs.count("cluster.isps_analyzed", len(campaign.analyzable_isp_asns))
            if precomputed is None:
                # Work units are (isp_asn, xi) pairs; each carries its ISP's
                # column *indices* into the campaign matrix, which crosses
                # to process workers once as a shared-memory reference —
                # workers never unpickle per-shard submatrix copies.
                # ISP-major order keeps an ISP's xi settings adjacent — with
                # the default chunk of 4 and 2 xis every shard holds whole
                # ISPs, so the per-shard ClusteringMemo computes each ISP's
                # distance matrix and OPTICS ordering exactly once.  The
                # pair *count* (and so the shard count in the coverage
                # ledger) is unchanged from the xi-major layout.  Per-pair
                # cost estimates (|ips|², the OPTICS distance-matrix term)
                # let the executors dispatch the heaviest ISPs first.
                pairs = []
                pair_costs = []
                for asn in campaign.analyzable_isp_asns:
                    isp_ips = campaign.ips_by_isp[asn]
                    isp_column_indices = matrix.column_indices(isp_ips)
                    for xi in config.xis:
                        pairs.append((ClusteringConfig(xi=xi), asn, isp_ips, isp_column_indices))
                        pair_costs.append(float(len(isp_ips)) ** 2)
                plan = ShardPlan.of(
                    pairs, chunk_size=config.parallel.clustering_chunk, costs=pair_costs
                )
                with ShmRegistry(enabled=config.parallel.backend != "serial") as registry:
                    shard_results = run_sharded(
                        partial(_cluster_shard, registry.share(matrix.rtt_ms)),
                        plan,
                        config.parallel,
                        telemetry=telemetry,
                        label="clustering",
                        faults=faults,
                        resilience=resilience,
                    )
                clusterings = {xi: {} for xi in config.xis}
                clustering_shards_lost = 0
                for shard_result in shard_results:
                    if isinstance(shard_result, ShardLoss):
                        # The shard's (isp, xi) cells are simply absent from
                        # the clusterings; downstream tables skip them and
                        # the loss is surfaced in coverage.
                        clustering_shards_lost += 1
                        continue
                    for xi, asn, clustering in shard_result:
                        clusterings[xi][asn] = clustering
                coverage.record("clustering.shards", clustering_shards_lost, plan.n_shards)
            else:
                require(
                    sorted(precomputed.clusterings) == sorted(config.xis),
                    "precomputed artifacts do not match this config: xis differ "
                    f"({sorted(precomputed.clusterings)} stored vs {sorted(config.xis)})",
                )
                expected_asns = set(campaign.analyzable_isp_asns)
                for xi, per_isp in precomputed.clusterings.items():
                    require(
                        set(per_isp) == expected_asns,
                        f"precomputed clusterings at xi={xi} cover different ISPs "
                        "than this config's filtered campaign",
                    )
                clusterings = {xi: dict(per_isp) for xi, per_isp in precomputed.clusterings.items()}
                n_pairs = len(config.xis) * len(campaign.analyzable_isp_asns)
                coverage.record(
                    "clustering.shards", 0, -(-n_pairs // config.parallel.clustering_chunk)
                )

        with obs.span("population", n_items=len(internet.isps)):
            population = build_population_dataset(
                internet, config.population_noise_sigma, seed=spawn_rng(root, "population")
            )
        with obs.span("ptr", n_items=len(state_2023.servers)):
            ptr = build_ptr_dataset(
                state_2023, internet.world, config.ptr, seed=spawn_rng(root, "ptr"), faults=faults
            )
        coverage.record("rdns.lookups", ptr.lookups_failed, len(state_2023.servers))

        if not coverage.complete:
            obs.gauge("resilience.coverage_lost_shards", coverage.shards_lost)
            obs.log(
                "study degraded by injected or quarantined losses",
                shards_lost=coverage.shards_lost,
                sites={site: lost for site, (lost, _) in coverage.entries.items() if lost},
            )

    if obs.tracer.enabled and obs.tracer.profiler is not None:
        record_throughput_gauges(obs)

    return Study(
        config=config,
        internet=internet,
        history=history,
        scans=scans,
        inventories=inventories,
        vantage_points=vantage_points,
        matrix=matrix,
        campaign=campaign,
        clusterings=clusterings,
        population=population,
        ptr=ptr,
        coverage=coverage,
        telemetry=telemetry,
    )
