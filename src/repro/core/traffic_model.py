"""Traffic shares and the single-facility serviceability arithmetic (§3.2).

The paper combines two public estimates: each hypergiant's share of total
Internet traffic (Sandvine) and the fraction of that hypergiant's traffic
its offnets can serve (operator claims).  A facility hosting offnets of a
set of hypergiants can then serve the *sum* of their servable shares of a
user's total traffic: e.g. all four hypergiants together
17 % + 9 % + 13 % + 13 % = 52 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require
from repro.deployment.hypergiants import DEFAULT_HYPERGIANT_PROFILES, HypergiantProfile


@dataclass(frozen=True)
class TrafficModel:
    """Servable-traffic arithmetic over a set of hypergiant profiles."""

    profiles: tuple[HypergiantProfile, ...] = DEFAULT_HYPERGIANT_PROFILES

    def profile(self, name: str) -> HypergiantProfile:
        """The profile named ``name``."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise KeyError(f"unknown hypergiant {name!r}")

    def servable_share(self, hypergiant: str) -> float:
        """Share of a user's total traffic one hypergiant's offnet can serve."""
        return self.profile(hypergiant).servable_traffic_share

    def facility_share(self, hypergiants: set[str] | list[str]) -> float:
        """Share of a user's total traffic a facility hosting ``hypergiants``
        can serve (the §3.2 sum)."""
        names = set(hypergiants)
        require(len(names) == len(list(hypergiants)) or isinstance(hypergiants, set), "duplicate hypergiants")
        return sum(self.servable_share(name) for name in sorted(names))

    @property
    def all_hypergiants_share(self) -> float:
        """The paper's headline: a 4-hypergiant facility's servable share."""
        return self.facility_share({p.name for p in self.profiles})

    def offnet_traffic_fraction(self, hypergiant: str) -> float:
        """Fraction of the hypergiant's own traffic served from offnets."""
        return self.profile(hypergiant).offnet_serve_fraction

    def interdomain_fraction(self, hypergiant: str) -> float:
        """Fraction of the hypergiant's traffic crossing interdomain links
        even in normal operation (1 - offnet fraction)."""
        return 1.0 - self.offnet_traffic_fraction(hypergiant)
