"""Request routing: how users actually reach offnets (substrate + §3.2).

§3.2 explains why nobody outside the hypergiants can know which users a
facility serves: the 2013 client-mapping technique (resolve a well-known
hostname from many client subnets and record the returned server) only
works when the hypergiant steers with *DNS*.  Google stopped;
Google/Netflix/Meta now embed customized, site-specific URLs in returned
web pages while hosting the pages themselves onnet; Akamai still uses DNS
but only honours EDNS-Client-Subnet from allow-listed resolvers.

This package builds that machinery — authoritative DNS with ECS
(:mod:`repro.steering.dns`), embedded-URL steering
(:mod:`repro.steering.urls`), and the ground-truth steering policy
(:mod:`repro.steering.policy`) — then replays the 2013 technique against it
(:mod:`repro.steering.mapping`) and shows exactly where it goes blind.
"""

from repro.steering.dns import DnsAuthority, DnsQuery, DnsResponse, EcsPolicy
from repro.steering.mapping import ClientMappingResult, run_client_mapping
from repro.steering.policy import SteeringPolicy, build_steering_policy
from repro.steering.urls import EmbeddedUrlFrontend, PlaybackManifest

__all__ = [
    "ClientMappingResult",
    "DnsAuthority",
    "DnsQuery",
    "DnsResponse",
    "EcsPolicy",
    "EmbeddedUrlFrontend",
    "PlaybackManifest",
    "SteeringPolicy",
    "build_steering_policy",
    "run_client_mapping",
]
