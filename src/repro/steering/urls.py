"""Embedded-URL steering: the modern front-end → manifest flow.

Google, Netflix, and Meta "generally direct users to a particular offnet
for cached content by embedding customized URLs into web pages returned to
users ... while hosting their web pages on onnet and cloud locations"
(§3.2).  :class:`EmbeddedUrlFrontend` models that application-layer step:
a client fetches the page from an onnet front end and receives a manifest
whose content hostnames are the site-specific names of the offnet that the
hypergiant's (private, server-side) steering chose for the client.

The crucial property for measurement: the *steering decision happens inside
the HTTPS exchange*, so a DNS-only observer never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import require
from repro.steering.dns import DnsAuthority, DnsQuery
from repro.topology.asn import AS


@dataclass(frozen=True)
class PlaybackManifest:
    """What the front end returns to one client."""

    hypergiant: str
    #: The onnet host that served the page itself.
    page_host: str
    #: Site-specific content hostnames chosen for this client.
    content_hostnames: tuple[str, ...]

    @property
    def uses_offnet(self) -> bool:
        """Whether the manifest points at offnet sites at all."""
        return bool(self.content_hostnames)


@dataclass
class EmbeddedUrlFrontend:
    """The onnet web/application front end of one hypergiant."""

    authority: DnsAuthority

    def fetch_manifest(self, client_network: AS) -> PlaybackManifest:
        """Serve the page to a client in ``client_network``.

        The front end knows the client's network from the connection itself
        (not from DNS), so its steering is exact — and invisible to anyone
        who can only observe DNS.
        """
        require(client_network is not None, "client network required")
        hostnames = self.authority.site_hostnames_for(client_network)
        return PlaybackManifest(
            hypergiant=self.authority.hypergiant,
            page_host=self.authority.well_known_hostname,
            content_hostnames=tuple(hostnames),
        )

    def content_ips(self, client_network: AS) -> list[int]:
        """Full application-layer flow: page -> manifest -> DNS -> servers.

        This is what a *browser inside the ISP* would end up connecting to;
        researchers without vantage points in the ISP cannot run it.
        """
        manifest = self.fetch_manifest(client_network)
        ips: set[int] = set()
        for hostname in manifest.content_hostnames:
            response = self.authority.resolve(DnsQuery(hostname, resolver_ip=0))
            ips.update(response.answers)
        return sorted(ips)
