"""Authoritative DNS with EDNS-Client-Subnet, per hypergiant.

Three steering eras are modelled, matching §3.2's history:

* ``LEGACY_DNS`` — the 2013 world: the well-known hostname (e.g.
  ``www.google.com``) resolves directly to the serving cache for the
  client's network, with ECS honoured from anyone.  The Calder et al. 2013
  mapping technique works against this.
* ``FRONTEND`` — the modern Google/Netflix/Meta world: the well-known
  hostname resolves only to onnet front-end addresses; offnet content is
  reached via *site-specific* hostnames embedded in returned pages
  (``fhan14-4.fna.fbcdn.net``), whose DNS answer is pinned by the name
  itself, independent of who asks.
* ``ECS_ALLOWLIST`` — the Akamai world: DNS steering still exists, but ECS
  is honoured only from allow-listed resolvers; everyone else gets an
  answer for the *resolver's* network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import require
from repro.deployment.placement import DeploymentState
from repro.steering.policy import SteeringPolicy
from repro.topology.asn import AS
from repro.topology.generator import Internet


class EcsPolicy(enum.Enum):
    """How an authority treats EDNS-Client-Subnet."""

    HONOR_ALL = "honor_all"
    ALLOWLIST_ONLY = "allowlist_only"
    IGNORE = "ignore"


class SteeringMode(enum.Enum):
    """How the hypergiant maps clients to caches."""

    LEGACY_DNS = "legacy_dns"
    FRONTEND = "frontend"
    ECS_ALLOWLIST = "ecs_allowlist"


@dataclass(frozen=True)
class DnsQuery:
    """A resolution request as the authority sees it."""

    qname: str
    resolver_ip: int
    #: Client subnet carried via ECS (an address standing for the /24), or
    #: None when the resolver does not send ECS.
    ecs_client_ip: int | None = None


@dataclass(frozen=True)
class DnsResponse:
    """The answer set for a query."""

    qname: str
    answers: tuple[int, ...]
    #: Whether ECS influenced the answer (echoed scope, loosely).
    ecs_used: bool = False


def site_hostname(hypergiant: str, facility_id: int, city_iata: str) -> str:
    """The site-specific content hostname for one deployment site.

    Follows each hypergiant's real naming style (§2.2 / §3.2):
    ``*.fna.fbcdn.net`` for Meta, ``*.nflxvideo.net`` for Netflix,
    ``*.c.googlevideo.com`` for Google.
    """
    cluster = 1 + facility_id % 20
    if hypergiant == "Meta":
        return f"f{city_iata}{cluster}-1.fna.fbcdn.net"
    if hypergiant == "Netflix":
        return f"ipv4-c{cluster:03d}-{city_iata}001-isp.1.oca.nflxvideo.net"
    if hypergiant == "Google":
        return f"rr{cluster}---sn-{city_iata}{facility_id % 7}.c.googlevideo.com"
    if hypergiant == "Akamai":
        return f"a{cluster}-{city_iata}.deploy.akamaitechnologies.com"
    raise ValueError(f"no hostname convention for {hypergiant!r}")


@dataclass
class DnsAuthority:
    """One hypergiant's authoritative DNS."""

    hypergiant: str
    mode: SteeringMode
    internet: Internet
    policy: SteeringPolicy
    well_known_hostname: str
    #: Onnet front-end addresses returned in FRONTEND mode.
    frontend_ips: tuple[int, ...] = ()
    #: Resolver addresses whose ECS is honoured in ECS_ALLOWLIST mode.
    ecs_allowlist: frozenset[int] = frozenset()
    _site_records: dict[str, tuple[int, ...]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(bool(self.well_known_hostname), "well_known_hostname required")
        if self.mode is SteeringMode.FRONTEND:
            require(bool(self.frontend_ips), "FRONTEND mode needs front-end addresses")
        # Site-specific names resolve to the site's servers for everyone.
        self._site_records = {}
        state = self.policy.state
        for deployment in state.deployments:
            if deployment.hypergiant != self.hypergiant:
                continue
            by_facility: dict[int, list[int]] = {}
            for server in deployment.servers:
                by_facility.setdefault(server.facility.facility_id, []).append(server.ip)
            for facility_id, ips in by_facility.items():
                facility = next(
                    s.facility for s in deployment.servers if s.facility.facility_id == facility_id
                )
                name = site_hostname(self.hypergiant, facility_id, facility.city.iata)
                self._site_records[name] = tuple(sorted(ips))

    # -- helpers ---------------------------------------------------------------

    def site_hostnames_for(self, isp: AS) -> list[str]:
        """The site hostnames serving ``isp``'s users (what pages embed)."""
        decision = self.policy.decisions.get((self.hypergiant, isp.asn))
        if decision is None or decision.deployment is None:
            return []
        names = []
        for facility in decision.deployment.facilities:
            names.append(site_hostname(self.hypergiant, facility.facility_id, facility.city.iata))
        return sorted(set(names))

    def _client_network(self, query: DnsQuery) -> tuple[AS | None, bool]:
        """(the network the answer is computed for, whether ECS was used)."""
        if query.ecs_client_ip is not None:
            if self.mode is SteeringMode.LEGACY_DNS:
                return self.internet.plan.owner_of(query.ecs_client_ip), True
            if self.mode is SteeringMode.ECS_ALLOWLIST and query.resolver_ip in self.ecs_allowlist:
                return self.internet.plan.owner_of(query.ecs_client_ip), True
        return self.internet.plan.owner_of(query.resolver_ip), False

    def _serving_ips_for(self, network: AS | None) -> tuple[int, ...]:
        if network is None:
            return ()
        decision = self.policy.decisions.get((self.hypergiant, network.asn))
        if decision is None or decision.deployment is None:
            return ()
        return tuple(sorted(s.ip for s in decision.deployment.servers))

    # -- resolution ---------------------------------------------------------------

    def resolve(self, query: DnsQuery) -> DnsResponse:
        """Answer ``query`` according to the steering mode."""
        # Site-specific names are answered identically for everyone.
        if query.qname in self._site_records:
            return DnsResponse(query.qname, self._site_records[query.qname])
        if query.qname != self.well_known_hostname:
            return DnsResponse(query.qname, ())
        if self.mode is SteeringMode.FRONTEND:
            # The page host lives onnet/cloud; no offnet is ever revealed.
            return DnsResponse(query.qname, tuple(self.frontend_ips))
        network, ecs_used = self._client_network(query)
        answers = self._serving_ips_for(network)
        if not answers:
            answers = tuple(self.frontend_ips)
        return DnsResponse(query.qname, answers, ecs_used=ecs_used)
