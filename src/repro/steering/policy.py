"""Ground-truth steering: which offnet serves which user.

Each hypergiant steers an ISP's users to that ISP's own offnet deployment
when one exists, otherwise up the provider chain to the nearest ancestor
hosting one, otherwise onnet.  This is the paper's serving model ("These
results likely underestimate the use of offnets, which can also serve users
downstream from a transit provider"), and it is the ground truth the
client-mapping technique tries — and mostly fails — to recover.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util import require
from repro.deployment.placement import Deployment, DeploymentState
from repro.topology.asn import AS
from repro.topology.generator import Internet


class ServingSource(enum.Enum):
    """Where a user's content for one hypergiant comes from."""

    LOCAL_OFFNET = "local_offnet"
    PROVIDER_OFFNET = "provider_offnet"
    ONNET = "onnet"


@dataclass(frozen=True)
class SteeringDecision:
    """The serving assignment for one (ISP, hypergiant) pair."""

    hypergiant: str
    isp_asn: int
    source: ServingSource
    #: The deployment serving the users (None when onnet).
    deployment: Deployment | None

    @property
    def serving_ips(self) -> list[int]:
        """Offnet IPs serving these users (empty when onnet)."""
        if self.deployment is None:
            return []
        return sorted(server.ip for server in self.deployment.servers)


@dataclass
class SteeringPolicy:
    """Ground-truth steering decisions for a whole deployment state."""

    state: DeploymentState
    decisions: dict[tuple[str, int], SteeringDecision] = field(default_factory=dict)

    def decision(self, hypergiant: str, isp: AS) -> SteeringDecision:
        """The decision for (``hypergiant``, ``isp``)."""
        return self.decisions[(hypergiant, isp.asn)]

    def served_from_offnet(self, hypergiant: str, isp: AS) -> bool:
        """Whether the ISP's users get ``hypergiant`` content from an offnet."""
        return self.decision(hypergiant, isp).source is not ServingSource.ONNET


def _provider_chain(internet: Internet, isp: AS, max_depth: int = 4) -> list[AS]:
    """Providers of ``isp`` in BFS order (nearest first), bounded depth."""
    chain: list[AS] = []
    frontier = [isp]
    seen = {isp}
    for _ in range(max_depth):
        next_frontier: list[AS] = []
        for current in frontier:
            for provider in internet.graph.providers_of(current):
                if provider not in seen:
                    seen.add(provider)
                    chain.append(provider)
                    next_frontier.append(provider)
        frontier = next_frontier
    return chain


def build_steering_policy(
    internet: Internet,
    state: DeploymentState,
    hypergiants: tuple[str, ...] = ("Google", "Netflix", "Meta", "Akamai"),
) -> SteeringPolicy:
    """Compute the ground-truth steering for every access ISP."""
    policy = SteeringPolicy(state=state)
    for hypergiant in hypergiants:
        require(hypergiant in internet.hypergiant_ases, f"unknown hypergiant {hypergiant}")
        for isp in internet.access_isps:
            local = state.deployment_of(hypergiant, isp)
            if local is not None:
                decision = SteeringDecision(hypergiant, isp.asn, ServingSource.LOCAL_OFFNET, local)
            else:
                decision = SteeringDecision(hypergiant, isp.asn, ServingSource.ONNET, None)
                for provider in _provider_chain(internet, isp):
                    upstream = state.deployment_of(hypergiant, provider)
                    if upstream is not None:
                        decision = SteeringDecision(
                            hypergiant, isp.asn, ServingSource.PROVIDER_OFFNET, upstream
                        )
                        break
            policy.decisions[(hypergiant, isp.asn)] = decision
    return policy
