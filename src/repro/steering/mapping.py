"""The 2013 client-mapping technique, replayed against modern steering.

Calder et al. (IMC'13) mapped Google's serving infrastructure by resolving
a well-known hostname on behalf of every client /24 (via EDNS-Client-Subnet
and open resolvers) and recording which servers were returned.  §3.2 of our
target paper explains why this no longer works: Google/Netflix/Meta steer
via embedded URLs (DNS only reveals onnet front ends), and Akamai honours
ECS only from allow-listed resolvers.

:func:`run_client_mapping` executes the technique against a
:class:`~repro.steering.dns.DnsAuthority` and scores the recovered
user→offnet mapping against the ground-truth steering policy — quantifying
the paper's claim that "with existing methodologies, it is impossible to
know which users are served from which offnets".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_fraction
from repro.steering.dns import DnsAuthority, DnsQuery
from repro.steering.policy import ServingSource
from repro.topology.asn import AS
from repro.topology.generator import Internet


@dataclass(frozen=True)
class MappingConfig:
    """Measurement-campaign knobs."""

    #: Fraction of ISPs that run an open resolver the measurer can use
    #: (the 2013 study found open resolvers in many, not all, networks).
    open_resolver_fraction: float = 0.3
    #: Address (inside a central measurement network) of the ECS-capable
    #: resolver the measurer controls.  0 means "use a made-up address the
    #: authority will not recognise" (i.e. not allow-listed).
    central_resolver_ip: int = 0

    def __post_init__(self) -> None:
        require_fraction(self.open_resolver_fraction, "open_resolver_fraction")


@dataclass
class ClientMappingResult:
    """Outcome of one mapping campaign against one hypergiant."""

    hypergiant: str
    #: ISP ASN -> offnet IPs the technique attributed to that ISP's users.
    recovered: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: ISP ASN -> ground-truth serving offnet IPs (offnet-served ISPs only).
    truth: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of offnet-served ISPs whose serving offnet was revealed.

        An ISP counts as covered when the technique attributed at least one
        of the ISP's true serving offnet IPs to it.
        """
        if not self.truth:
            return 0.0
        covered = 0
        for asn, true_ips in self.truth.items():
            found = set(self.recovered.get(asn, ()))
            if found & set(true_ips):
                covered += 1
        return covered / len(self.truth)

    @property
    def false_attribution_rate(self) -> float:
        """Fraction of ISPs with recovered IPs that are all wrong."""
        attributed = [asn for asn, ips in self.recovered.items() if ips]
        if not attributed:
            return 0.0
        wrong = 0
        for asn in attributed:
            found = set(self.recovered[asn])
            if not (found & set(self.truth.get(asn, ()))):
                wrong += 1
        return wrong / len(attributed)


def _offnet_ip_universe(authority: DnsAuthority) -> set[int]:
    """All offnet IPs of the authority's hypergiant (to filter onnet noise)."""
    state = authority.policy.state
    return {
        server.ip
        for deployment in state.deployments
        if deployment.hypergiant == authority.hypergiant
        for server in deployment.servers
    }


def run_client_mapping(
    internet: Internet,
    authority: DnsAuthority,
    config: MappingConfig | None = None,
    seed: int | np.random.Generator = 0,
) -> ClientMappingResult:
    """Replay the IMC'13 technique against ``authority``.

    For every access ISP, issue (a) an ECS query from the measurer's
    central resolver carrying a client address inside the ISP, and (b) if
    the ISP happens to run an open resolver, a plain query through it.
    Record every returned address that belongs to the hypergiant's offnet
    footprint, attributed to the queried ISP.
    """
    config = config or MappingConfig()
    rng = make_rng(seed)
    offnet_universe = _offnet_ip_universe(authority)
    result = ClientMappingResult(hypergiant=authority.hypergiant)

    for isp in internet.access_isps:
        # Ground truth (only offnet-served ISPs are mapping targets).
        decision = authority.policy.decisions.get((authority.hypergiant, isp.asn))
        if decision is not None and decision.source is not ServingSource.ONNET:
            result.truth[isp.asn] = tuple(decision.serving_ips)

        prefix = internet.plan.prefixes_of(isp)[0]
        client_ip = prefix.base + 777
        answers: set[int] = set()

        # (a) ECS from the central measurement resolver.
        response = authority.resolve(
            DnsQuery(
                authority.well_known_hostname,
                resolver_ip=config.central_resolver_ip,
                ecs_client_ip=client_ip,
            )
        )
        answers.update(response.answers)

        # (b) an open resolver inside the ISP, when one exists.
        if rng.random() < config.open_resolver_fraction:
            open_resolver_ip = prefix.base + 53
            response = authority.resolve(
                DnsQuery(authority.well_known_hostname, resolver_ip=open_resolver_ip)
            )
            answers.update(response.answers)

        result.recovered[isp.asn] = tuple(sorted(answers & offnet_universe))
    return result


def build_authority(
    internet: Internet,
    policy,
    hypergiant: str,
    mode,
    allowlisted_resolvers: tuple[int, ...] = (),
) -> DnsAuthority:
    """Convenience constructor wiring front-end addresses from the plan."""
    require(hypergiant in internet.hypergiant_ases, f"unknown hypergiant {hypergiant}")
    hypergiant_as = internet.hypergiant_as(hypergiant)
    onnet_prefix = internet.plan.prefixes_of(hypergiant_as)[0]
    frontends = tuple(onnet_prefix.base + 1 + i for i in range(4))
    well_known = {
        "Google": "www.google.com",
        "Netflix": "www.netflix.com",
        "Meta": "www.facebook.com",
        "Akamai": "a248.e.akamai.net",
    }[hypergiant]
    return DnsAuthority(
        hypergiant=hypergiant,
        mode=mode,
        internet=internet,
        policy=policy,
        well_known_hostname=well_known,
        frontend_ips=frontends,
        ecs_allowlist=frozenset(allowlisted_resolvers),
    )
