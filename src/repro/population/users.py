"""Per-ISP Internet-user estimates, APNIC style.

The paper weights ISPs by the APNIC per-AS user-population dataset [27],
which estimates what fraction of a country's Internet users sit in each AS
from ad-measurement samples.  Ground truth here is ``AS.users`` (assigned by
the topology generator); the dataset view adds optional multiplicative
estimation noise, so analyses consume *estimates*, like the real study, and
tests can quantify sensitivity to estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import make_rng, require, require_non_negative
from repro.topology.asn import AS
from repro.topology.generator import Internet


@dataclass
class PopulationDataset:
    """Estimated users per ASN plus country totals."""

    users_by_asn: dict[int, int]
    country_totals: dict[str, int]
    country_by_asn: dict[int, str]

    def users_of(self, asn: int) -> int:
        """Estimated users of ``asn`` (0 if unknown — e.g. transit ASes)."""
        return self.users_by_asn.get(asn, 0)

    @property
    def total_users(self) -> int:
        """Total Internet users across all countries."""
        return sum(self.country_totals.values())

    def users_in_asns(self, asns: set[int]) -> int:
        """Total estimated users across ``asns``."""
        return sum(self.users_by_asn.get(asn, 0) for asn in asns)

    def country_fraction(self, country_code: str, asns: set[int]) -> float:
        """Fraction of ``country_code``'s users inside ``asns``."""
        total = self.country_totals.get(country_code, 0)
        if total == 0:
            return 0.0
        in_set = sum(
            users
            for asn, users in self.users_by_asn.items()
            if asn in asns and self.country_by_asn.get(asn) == country_code
        )
        return min(1.0, in_set / total)

    def world_fraction(self, asns: set[int]) -> float:
        """Fraction of the world's users inside ``asns``."""
        total = self.total_users
        return self.users_in_asns(asns) / total if total else 0.0


def build_population_dataset(
    internet: Internet,
    estimation_noise_sigma: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> PopulationDataset:
    """Build the dataset from ground truth, with optional log-normal noise.

    ``estimation_noise_sigma`` is the sigma of a multiplicative log-normal
    error per ISP (0 = exact, APNIC-like quality is roughly 0.1-0.3).
    """
    require_non_negative(estimation_noise_sigma, "estimation_noise_sigma")
    rng = make_rng(seed)
    users_by_asn: dict[int, int] = {}
    country_by_asn: dict[int, str] = {}
    for isp in internet.access_isps:
        estimate = isp.users
        if estimation_noise_sigma > 0:
            estimate = int(round(estimate * rng.lognormal(0.0, estimation_noise_sigma)))
        users_by_asn[isp.asn] = estimate
        country_by_asn[isp.asn] = isp.country_code
    country_totals = {c.code: c.internet_users for c in internet.world.countries}
    require(bool(country_totals), "world has no countries")
    return PopulationDataset(
        users_by_asn=users_by_asn,
        country_totals=country_totals,
        country_by_asn=country_by_asn,
    )
