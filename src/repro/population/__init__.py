"""APNIC-style per-ISP Internet-user population estimates (substrate)."""

from repro.population.users import PopulationDataset, build_population_dataset

__all__ = ["PopulationDataset", "build_population_dataset"]
