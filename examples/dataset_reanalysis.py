#!/usr/bin/env python3
"""Dataset reanalysis: work from the released files, not the pipeline.

Measurement papers release datasets; reviewers and follow-up work reanalyse
them.  This example plays both roles: it exports a study archive (the
inventories, latency matrix, clusterings, populations, PTR records), then —
*using only the files on disk* — recomputes the paper's Table 2 and a
Figure 2-style concentration estimate, exactly as a third party would.

Run::

    python examples/dataset_reanalysis.py
"""

import tempfile
from pathlib import Path

from repro._util import format_table
from repro.core.colocation import ColocationBucket, build_colocation_table
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study
from repro.io.archive import load_archive, save_archive


def export_phase(directory: Path) -> None:
    """The authors' side: run the pipeline once and release the data."""
    study = cached_study(SMALL_SCENARIO.name)
    save_archive(study, directory)
    files = sorted(p.name for p in directory.iterdir())
    print(f"released dataset ({len(files)} files):")
    for name in files:
        size = (directory / name).stat().st_size
        print(f"  {name:22s} {size:>10,} bytes")


def reanalysis_phase(directory: Path) -> None:
    """The third party's side: only the files, no generator, no ground truth."""
    archive = load_archive(directory)
    print(
        f"\nloaded archive: repro {archive.manifest.version}, epochs "
        f"{archive.manifest.epochs}, {archive.manifest.n_detections} detections, "
        f"latency matrix {archive.rtt_ms.shape}"
    )

    # Recompute Table 2 from the released clusterings + inventory.
    print("\n== Table 2, recomputed from the released files ==")
    for xi in archive.manifest.xis:
        table = build_colocation_table(
            xi,
            archive.clusterings[xi],
            archive.hypergiant_of_ip("2023"),
            archive.hypergiants_by_isp("2023"),
        )
        print(table.render())
        print()

    # A quick independent concentration estimate: for each analyzable ISP,
    # how many hypergiants does its biggest cluster hold?
    rows = []
    histogram: dict[int, int] = {}
    hg_of_ip = archive.hypergiant_of_ip("2023")
    for xi in archive.manifest.xis:
        for asn, clustering in archive.clusterings[xi].items():
            best = 0
            for cluster in clustering.clusters:
                hypergiants = {hg_of_ip[ip] for ip in cluster if ip in hg_of_ip}
                best = max(best, len(hypergiants))
            histogram[best] = histogram.get(best, 0) + 1
        total = sum(histogram.values())
        rows.append(
            [f"xi={xi}"]
            + [f"{100 * histogram.get(k, 0) / total:.0f}%" for k in (1, 2, 3, 4)]
        )
        histogram.clear()
    print("== hypergiants in each ISP's biggest facility (from files alone) ==")
    print(format_table(["clustering", "1 HG", "2 HGs", "3 HGs", "4 HGs"], rows))


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch) / "released-dataset"
        export_phase(directory)
        reanalysis_phase(directory)


if __name__ == "__main__":
    main()
