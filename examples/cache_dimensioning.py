#!/usr/bin/env python3
"""Cache dimensioning: how big must an appliance be, and why it matters.

An ISP deciding whether to host an offnet wants to know: what byte hit
ratio will the appliance deliver, and how much interdomain traffic does
each extra terabyte of cache save?  This example sweeps appliance
capacities against each hypergiant's content catalog and translates the
emergent hit ratios into peak-hour interdomain Gbps for a mid-size ISP —
connecting the cache substrate to the §4 capacity story.

Run::

    python examples/cache_dimensioning.py
"""

from repro._util import format_table
from repro.cache.catalog import DEFAULT_CATALOGS, build_catalog
from repro.cache.simulate import simulate_cache
from repro.capacity.demand import DemandModel
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study


def main() -> None:
    study = cached_study(SMALL_SCENARIO.name)
    demand = DemandModel(traffic=study.traffic)
    state = study.history.state("2023")
    isp = min(state.hosting_isps(), key=lambda a: abs(a.users - 2_000_000))
    print(f"dimensioning for {isp.name} ({isp.users:,} users)\n")

    headers = [
        "Hypergiant",
        "capacity",
        "byte hit ratio",
        "peak demand",
        "interdomain w/o cache",
        "interdomain w/ cache",
    ]
    rows = []
    for hypergiant, spec in sorted(DEFAULT_CATALOGS.items()):
        catalog_gb = build_catalog(spec, seed=2).total_gb
        peak = demand.hypergiant_peak_gbps(isp, hypergiant)
        for fraction in (0.05, 0.25, 0.5):
            capacity = fraction * catalog_gb
            result = simulate_cache(spec, capacity, seed=2)
            interdomain = peak * (1.0 - result.byte_hit_ratio)
            rows.append(
                [
                    hypergiant,
                    f"{capacity:,.0f} GB ({fraction:.0%} of catalog)",
                    f"{result.byte_hit_ratio:.2f}",
                    f"{peak:.1f} G",
                    f"{peak:.1f} G",
                    f"{interdomain:.1f} G",
                ]
            )
    print(format_table(headers, rows))
    print(
        "\ntakeaway: Netflix's head-heavy catalog reaches ~0.9 with a small "
        "appliance; Akamai's tail needs half the catalog on disk for 0.75 — "
        "the §2.1 offnet fractions are catalog shapes, not policy choices"
    )


if __name__ == "__main__":
    main()
