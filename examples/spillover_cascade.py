#!/usr/bin/env python3
"""Spillover cascade: what happens when a shared facility goes dark.

Walks the §3.3/§4.3 failure story end to end on the synthetic Internet:

1. provision realistic capacities (offnets near capacity, noisy PNIs,
   tiered IXP ports, normally-sized transit);
2. show a normal evening peak for the ISP hosting the most-shared facility;
3. kill that facility and show where the traffic goes — and what other
   services lose, hour by hour;
4. replay the paper's COVID surge for comparison.

Run::

    python examples/spillover_cascade.py
"""

from repro._util import format_table
from repro.capacity.cascade import simulate_cascade
from repro.capacity.demand import DemandModel
from repro.capacity.events import facility_outage_scenario
from repro.capacity.links import build_capacity_plan
from repro.capacity.spillover import SpilloverModel
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study
from repro.experiments.section41_capacity import run_covid_experiment
from repro.experiments.section43_collateral import most_shared_facility


def show_peak_hour(model: SpilloverModel, asn: int, hour: int, title: str) -> None:
    report = model.report(asn, hour)
    print(f"-- {title} (hour {hour:02d}) --")
    headers = ["service", "demand", "offnet", "PNI", "IXP", "transit", "unserved"]
    rows = []
    for name in sorted(report.flows):
        flow = report.flows[name]
        rows.append(
            [
                name,
                f"{flow.demand_gbps:.1f}G",
                f"{flow.offnet_gbps:.1f}G",
                f"{flow.pni_gbps:.1f}G",
                f"{flow.ixp_gbps:.1f}G",
                f"{flow.transit_gbps:.1f}G",
                f"{flow.unserved_gbps:.1f}G",
            ]
        )
    print(format_table(headers, rows))
    print(
        f"shared links: IXP util {report.ixp_utilization:.2f}, transit util "
        f"{report.transit_utilization:.2f}, background collateral "
        f"{report.background_collateral_gbps:.1f}G"
    )


def main() -> None:
    study = cached_study(SMALL_SCENARIO.name)
    state = study.history.state("2023")
    demand = DemandModel(traffic=study.traffic)
    plans = build_capacity_plan(study.internet, state, demand, seed=11)
    model = SpilloverModel(study.internet, demand, plans)

    facility_id, hypergiants = most_shared_facility(study)
    owner_asn = next(
        s.isp.asn for s in state.servers if s.facility.facility_id == facility_id
    )
    print(
        f"most-shared facility: #{facility_id} in ASN {owner_asn}, hosting "
        f"{' + '.join(hypergiants)}\n"
    )
    show_peak_hour(model, owner_asn, 20, "normal operation")

    scenario = facility_outage_scenario(facility_id)
    damaged = SpilloverModel(study.internet, demand, scenario.apply_to_plans(plans))
    print()
    show_peak_hour(damaged, owner_asn, 20, "facility outage")

    report = simulate_cascade(
        study.internet, demand, plans, scenario, study.population, asns=[owner_asn]
    )
    outcome = report.outcomes[owner_asn]
    print(
        f"\nday totals under outage: offnet {100 * outcome.offnet_change:+.0f}%, "
        f"interdomain x{outcome.interdomain_ratio:.1f}, "
        f"{outcome.congested_hours} congested hours, "
        f"collateral {outcome.collateral_gbph:.0f} Gbps-h, "
        f"{report.affected_users():,} users affected"
    )

    covid = run_covid_experiment(study, sample=20)
    print(
        f"\nCOVID comparison (Netflix x1.58 everywhere): baseline offnet share "
        f"{100 * covid.baseline_offnet_share:.0f}%, offnet "
        f"{100 * covid.offnet_change:+.0f}%, interdomain x{covid.interdomain_ratio:.2f} "
        "(paper: 63%, ~+20%, more than doubled)"
    )


if __name__ == "__main__":
    main()
