#!/usr/bin/env python3
"""Mitigation what-if: §6's isolation and upgrade proposals, evaluated.

The paper's discussion section asks what could reduce the correlated risk:
isolation mechanisms on shared links, and (implicitly, via §4.2.2) faster
interconnect upgrades.  This example answers both questions on the
synthetic Internet:

1. replay the worst-case facility outage under the three shared-link
   allocation policies and compare who pays — other services (collateral)
   or the hypergiants (unserved overflow);
2. sweep the PNI upgrade lead time and show how negotiation delay alone
   produces the paper's persistently-overloaded links.

Run::

    python examples/mitigation_what_if.py
"""

from repro._util import format_table
from repro.capacity.isolation import IsolationPolicy
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study
from repro.experiments.section6_mitigations import run_isolation_comparison, run_upgrade_sweep


def main() -> None:
    study = cached_study(SMALL_SCENARIO.name)

    facility_id, outcomes = run_isolation_comparison(study)
    print(f"== facility {facility_id} outage under each isolation policy ==")
    headers = ["policy", "collateral (Gbps-h)", "unserved HG (Gbps-h)", "interdomain (Gbps-h)"]
    rows = [
        [
            outcome.policy.value,
            f"{outcome.collateral_gbph:.0f}",
            f"{outcome.unserved_gbph:.0f}",
            f"{outcome.interdomain_gbph:.0f}",
        ]
        for outcome in outcomes
    ]
    print(format_table(headers, rows))
    fair = next(o for o in outcomes if o.policy is IsolationPolicy.FAIR_SHARE)
    protected = next(o for o in outcomes if o.policy is IsolationPolicy.PROTECT_BACKGROUND)
    if fair.collateral_gbph > 0:
        print(
            f"\nisolation eliminates {fair.collateral_gbph - protected.collateral_gbph:.0f} "
            f"Gbps-h of collateral damage, shifting "
            f"{protected.unserved_gbph - fair.unserved_gbph:.0f} Gbps-h of pain "
            "onto the hypergiants' own overflow"
        )

    print("\n== PNI upgrade lead time vs steady-state overload ==")
    sweeps = run_upgrade_sweep(study, lead_times=(2, 6, 12))
    headers = ["lead time", "overloaded link-months", "final peak>cap", "final peak>=2x cap"]
    rows = []
    for lead, report in sorted(sweeps.items()):
        rows.append(
            [
                f"~{lead} months",
                f"{100 * report.overloaded_link_month_fraction():.0f}%",
                f"{100 * report.final_overloaded_fraction():.0f}%",
                f"{100 * report.final_overloaded_fraction(2.0):.0f}%",
            ]
        )
    print(format_table(headers, rows))
    print(
        "\n(the paper's §4.2.2: upgrades 'can take months or even be impossible' — "
        "the longer the lead time, the closer the fleet sits to its capacity ceiling)"
    )


if __name__ == "__main__":
    main()
