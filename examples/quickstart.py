#!/usr/bin/env python3
"""Quickstart: run the whole study on a small synthetic Internet.

Reproduces (at small scale) every headline artifact of the paper in one go:
Table 1 (offnet growth), Figure 1 (per-country multi-hypergiant users),
Table 2 (colocation buckets), Figure 2 (single-facility traffic shares),
and the §3.2 cohosting narrative.

Run::

    python examples/quickstart.py
"""

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study
from repro.experiments.section32 import run_section32
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def main() -> None:
    print(f"running study: scenario={SMALL_SCENARIO.name!r} "
          f"({SMALL_SCENARIO.config.internet.n_access_isps} access ISPs, "
          f"{SMALL_SCENARIO.config.n_vantage_points} vantage points)")
    study = cached_study(SMALL_SCENARIO.name)

    n_servers = len(study.history.state("2023").servers)
    n_detected = len(study.latest_inventory)
    print(f"ground truth: {n_servers} offnet servers; detected: {n_detected}\n")

    print("== Table 1: offnet footprint growth ==")
    print(run_table1(study).render())

    print("\n== Figure 1: users in multi-hypergiant ISPs ==")
    print(run_figure1(study).summary())

    print("\n== Table 2: colocation of offnets across hypergiants ==")
    print(run_table2(study).render())

    print("\n== Figure 2: single-facility traffic concentration ==")
    print(run_figure2(study).render())

    print("\n== Section 3.2: cohosting and cluster validation ==")
    print(run_section32(study).render())


if __name__ == "__main__":
    main()
