#!/usr/bin/env python3
"""Colocation audit: find the riskiest shared facilities for one country.

The scenario the paper's §3.3 worries about, from a regulator's (or ISP
operations team's) point of view: *within one country, which facilities
concentrate the most hypergiants for the most users, and how few facilities
cover most of the country's offnet-served traffic?*

The audit uses only inferred data (detected offnets, latency clusters,
population estimates) — exactly what an external auditor could produce —
and then grades the inference against the generator's ground truth.

Run::

    python examples/colocation_audit.py [COUNTRY_CODE]
"""

import sys

from repro._util import format_table
from repro.core.risk import choke_point_count, rank_facility_risks
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study


def main(country_code: str = "US") -> None:
    study = cached_study(SMALL_SCENARIO.name)
    xi = 0.9  # the conservative clustering bound
    risks = rank_facility_risks(
        study.clusterings[xi],
        study.hypergiant_of_ip,
        study.population,
        study.traffic,
        min_hypergiants=2,
    )
    country_risks = [
        r for r in risks if study.population.country_by_asn.get(r.isp_asn) == country_code
    ]
    if not country_risks:
        print(f"no multi-hypergiant facilities inferred in {country_code}")
        return

    print(f"== top shared-fate facilities in {country_code} (xi={xi}) ==")
    headers = ["ISP ASN", "hypergiants in facility", "servable share", "users", "exposure"]
    rows = []
    for risk in country_risks[:10]:
        rows.append(
            [
                risk.isp_asn,
                "+".join(risk.hypergiants),
                f"{100 * risk.servable_share:.0f}%",
                f"{risk.users:,}",
                f"{risk.exposure / 1e6:.1f}M user-share",
            ]
        )
    print(format_table(headers, rows))

    choke = choke_point_count(risks, study.population, country_code, coverage=0.5)
    print(
        f"\nchoke points: {choke} facility(ies) cover >= 50% of {country_code}'s "
        "multi-hypergiant offnet exposure"
    )

    # Grade the top inference against ground truth: do the clustered IPs
    # really share a facility?
    top = country_risks[0]
    clustering = study.clusterings[xi][top.isp_asn]
    cluster_ips = clustering.clusters[top.cluster_label]
    state = study.history.state("2023")
    true_facilities = {state.server_at(ip).facility.name for ip in cluster_ips}
    print(
        f"ground-truth check of the top facility: {len(cluster_ips)} IPs map to "
        f"{len(true_facilities)} true facility(ies): {sorted(true_facilities)}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "US")
