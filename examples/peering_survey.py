#!/usr/bin/env python3
"""Peering survey: replay the §4.2.1 traceroute methodology.

Issues traceroutes from a hypergiant's vantage regions to every ISP hosting
its offnets, infers peering from "hypergiant IP directly followed by an IP
mapped to the ISP" (with IXP fabric addresses resolved through a Euro-IX
style dataset), and — something the real study cannot do — grades the
inference against the generated ground-truth relationship graph.

Run::

    python examples/peering_survey.py [HYPERGIANT]
"""

import sys

from repro._util import format_table
from repro.experiments.scenarios import SMALL_SCENARIO, cached_study
from repro.traceroute import CampaignConfig, PeeringEvidence, run_peering_campaign
from repro.traceroute.engine import TracerouteEngine
from repro.traceroute.peering import score_peering_inference
from repro.topology.prefixes import ip_to_str


def main(hypergiant: str = "Google") -> None:
    study = cached_study(SMALL_SCENARIO.name)
    state = study.history.state("2023")
    hosting = state.isps_hosting(hypergiant)
    print(f"{len(hosting)} ISPs host {hypergiant} offnets; tracerouting from "
          f"{SMALL_SCENARIO.n_traceroute_regions} regions...")

    inference = run_peering_campaign(
        study.internet,
        hypergiant,
        hosting,
        CampaignConfig(n_regions=SMALL_SCENARIO.n_traceroute_regions, targets_per_isp=2),
        seed=9,
    )
    counts = inference.counts_for([isp.asn for isp in hosting])
    total = len(hosting)
    headers = ["evidence", "ISPs", "fraction", "paper"]
    paper = {
        PeeringEvidence.PEER: "38.2%",
        PeeringEvidence.POSSIBLE_PEER: "13.3%",
        PeeringEvidence.NO_EVIDENCE: "48.4%",
    }
    rows = [
        [evidence.value, count, f"{100 * count / total:.1f}%", paper[evidence]]
        for evidence, count in counts.items()
    ]
    print(format_table(headers, rows))
    print(
        f"of inferred peers: {100 * inference.ixp_at_least_once_fraction():.1f}% via IXP "
        f"at least once (paper 62.2%), {100 * inference.ixp_only_fraction():.1f}% "
        "only via IXP (paper 42.5%)"
    )
    score = score_peering_inference(study.internet, hypergiant, inference)
    print(f"vs ground truth: precision {score.precision:.3f}, recall {score.recall:.3f}")

    # Show one raw traceroute, the way the methodology sees it.
    engine = TracerouteEngine(study.internet, seed=1)
    target_isp = hosting[0]
    destination = study.internet.plan.prefixes_of(target_isp)[0].base + 7
    path = engine.trace(study.internet.hypergiant_as(hypergiant), destination, "region-000")
    print(f"\nsample traceroute {hypergiant} -> {target_isp.name} ({ip_to_str(destination)}):")
    for index, hop in enumerate(path.hops, start=1):
        shown = ip_to_str(hop.address) if hop.address is not None else "*"
        ixp = f" (IXP {hop.via_ixp_id})" if hop.via_ixp_id is not None else ""
        print(f"  {index:2d}  {shown:16s} [true ASN {hop.true_asn}]{ixp}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Google")
